package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// --- pure parser tests -------------------------------------------------

func TestReadSSEParsesFrames(t *testing.T) {
	stream := "event: snapshot\ndata: {\"kind\":\"snapshot\",\"version\":3}\n\n" +
		"event: delta\ndata: {\"kind\":\"delta\",\"version\":4}\n\n" +
		"event: goodbye\ndata: {}\n\n"
	var events []SSEEvent
	err := readSSE(strings.NewReader(stream), func(ev SSEEvent) bool {
		events = append(events, ev)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[0].Event != "snapshot" || events[1].Event != "delta" || events[2].Event != "goodbye" {
		t.Fatalf("parsed %+v", events)
	}
}

func TestConsumeSSEStopsAtGoodbyeAndMax(t *testing.T) {
	stream := "event: snapshot\ndata: {\"kind\":\"snapshot\",\"version\":1}\n\n" +
		"event: delta\ndata: {\"kind\":\"delta\",\"version\":2}\n\n" +
		"event: goodbye\ndata: {}\n\n"
	out, err := consumeSSE(strings.NewReader(stream), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Goodbye || out.Frames != 2 || out.LastVersion != 2 || !out.Snapshot {
		t.Fatalf("outcome %+v", out)
	}
	// maxFrames stops before the goodbye is seen.
	out, err = consumeSSE(strings.NewReader(stream), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Goodbye || out.Frames != 1 || out.LastVersion != 1 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestReadSSETruncatedStream(t *testing.T) {
	// Stream cut mid-event (no terminating blank line): the partial event
	// is still delivered.
	stream := "event: delta\ndata: {\"kind\":\"delta\",\"version\":9}\n"
	var got []SSEEvent
	if err := readSSE(strings.NewReader(stream), func(ev SSEEvent) bool {
		got = append(got, ev)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Event != "delta" {
		t.Fatalf("parsed %+v", got)
	}
}

// --- live-server edge cases --------------------------------------------

func sseTarget(t *testing.T) *Target {
	t.Helper()
	tgt, err := SelfHost(SelfHostConfig{
		Vertices: 256, Edges: 1024, Problems: []string{"SSSP"}, K: 4, Seed: 9,
		HistoryCapacity: 8, CacheEntries: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tgt.Close)
	return tgt
}

func applyBatch(t *testing.T, base string, edges ...[3]uint32) uint64 {
	t.Helper()
	list := make([]map[string]any, len(edges))
	for i, e := range edges {
		list[i] = map[string]any{"src": e[0], "dst": e[1], "w": e[2]}
	}
	b, _ := json.Marshal(map[string]any{"edges": list})
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Version
}

// TestSSEDrainGoodbye opens a live stream, then drains the server
// mid-stream: the client must see the goodbye event, not a dropped
// connection.
func TestSSEDrainGoodbye(t *testing.T) {
	tgt := sseTarget(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, tgt.URL+"/v1/subscribe?problem=SSSP&src=5", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}

	drainErr := make(chan error, 1)
	go func() {
		// Give the stream a moment to deliver its snapshot, then drain.
		time.Sleep(100 * time.Millisecond)
		dctx, dcancel := context.WithTimeout(ctx, 10*time.Second)
		defer dcancel()
		drainErr <- tgt.Drain(dctx)
	}()

	out, err := consumeSSE(resp.Body, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Goodbye {
		t.Fatalf("stream ended without goodbye: %+v", out)
	}
	if !out.Snapshot {
		t.Fatalf("no snapshot frame before drain: %+v", out)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestLongPollTimeout204 pins the long-poll fallback's no-change
// contract: ?mode=poll&wait=1 with no writes answers 204 after ~1s.
func TestLongPollTimeout204(t *testing.T) {
	tgt := sseTarget(t)
	start := time.Now()
	resp, err := http.Get(tgt.URL + "/v1/subscribe?problem=SSSP&src=5&mode=poll&wait=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d, want 204", resp.StatusCode)
	}
	if d := time.Since(start); d < 900*time.Millisecond || d > 10*time.Second {
		t.Fatalf("poll returned after %v, want ~1s", d)
	}
}

// TestLongPollDeliversDelta pins the change path: a write during the
// poll delivers the delta frame with its version header.
func TestLongPollDeliversDelta(t *testing.T) {
	tgt := sseTarget(t)
	type pollResult struct {
		status  int
		version string
		err     error
	}
	done := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(tgt.URL + "/v1/subscribe?problem=SSSP&src=5&mode=poll&wait=20")
		if err != nil {
			done <- pollResult{err: err}
			return
		}
		defer resp.Body.Close()
		done <- pollResult{status: resp.StatusCode, version: resp.Header.Get("X-Tripoline-Version")}
	}()
	time.Sleep(150 * time.Millisecond)
	v := applyBatch(t, tgt.URL, [3]uint32{5, 77, 1}, [3]uint32{77, 130, 2})
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("poll status %d, want 200", res.status)
	}
	if res.version != fmt.Sprint(v) {
		t.Fatalf("poll delivered version %q, batch produced %d", res.version, v)
	}
}

// TestSSEReconnectResume pins the resume path the loadgen subscribe op
// exercises: consume frames, disconnect, then re-read with
// ?stale=ok&min_version=<last frame version> — the answer must be at
// least as fresh as the last frame seen.
func TestSSEReconnectResume(t *testing.T) {
	tgt := sseTarget(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, tgt.URL+"/v1/subscribe?problem=SSSP&src=9", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		applyBatch(t, tgt.URL, [3]uint32{9, 42, 1})
	}()
	out, err := consumeSSE(resp.Body, 2) // snapshot + one delta
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out.Frames < 2 || out.LastVersion == 0 {
		t.Fatalf("stream outcome %+v, want snapshot+delta with versions", out)
	}

	// Reconnect: a stale-tolerant read pinned at the last seen version.
	r2, err := http.Get(fmt.Sprintf("%s/v1/query?problem=SSSP&source=9&stale=ok&min_version=%d", tgt.URL, out.LastVersion))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("resume query status %d", r2.StatusCode)
	}
	var got uint64
	if _, err := fmt.Sscan(r2.Header.Get("X-Tripoline-Version"), &got); err != nil {
		t.Fatalf("resume version header %q: %v", r2.Header.Get("X-Tripoline-Version"), err)
	}
	if got < out.LastVersion {
		t.Fatalf("resume answered version %d, older than last frame %d", got, out.LastVersion)
	}
}
