package triangle_test

import (
	"testing"
	"testing/quick"

	"tripoline/internal/engine"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/oracle"
	"tripoline/internal/props"
	"tripoline/internal/triangle"
)

// TestDeltaEqualsFullQuick fuzzes Theorem 4.4: random small graphs,
// random (u, r) pairs, every problem — the Δ-seeded run must converge to
// the oracle's values.
func TestDeltaEqualsFullQuick(t *testing.T) {
	reg := props.Registry()
	names := []string{"BFS", "SSSP", "SSWP", "SSNP", "Viterbi", "SSR"}
	f := func(seed uint64, rawU, rawR uint8, directed bool, pick uint8) bool {
		const n = 48
		m := 180 + int(seed%200)
		g := graph.FromEdges(n, gen.Uniform(n, m, 8, seed), directed)
		u := graph.VertexID(rawU) % n
		r := graph.VertexID(rawR) % n
		p := reg[names[int(pick)%len(names)]]

		standing := oracle.BestPath(g, p, r)
		var propUR uint64
		if directed {
			propUR = oracle.BestPathTo(g, p, r)[u]
		} else {
			propUR = standing[u]
		}
		init := triangle.DeltaInit(p, u, propUR, standing)
		st := &engine.State{P: p, K: 1, N: n, Values: init}
		st.RunPush(g, []graph.VertexID{u}, []uint64{1})

		want := oracle.BestPath(g, p, u)
		for v := range want {
			if st.Values[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaInitNeverBeatsOracleQuick checks the inequality direction of
// the Δ initialization itself on random graphs: Δ(u,r)[x] is never
// strictly better than the true property(u,x).
func TestDeltaInitNeverBeatsOracleQuick(t *testing.T) {
	reg := props.Registry()
	names := []string{"BFS", "SSSP", "SSWP", "SSNP", "Viterbi", "SSR"}
	f := func(seed uint64, rawU, rawR uint8, pick uint8) bool {
		const n = 40
		g := graph.FromEdges(n, gen.Uniform(n, 160, 8, seed), false)
		u := graph.VertexID(rawU) % n
		r := graph.VertexID(rawR) % n
		p := reg[names[int(pick)%len(names)]]
		standing := oracle.BestPath(g, p, r)
		init := triangle.DeltaInit(p, u, standing[u], standing)
		want := oracle.BestPath(g, p, u)
		for x := range want {
			if graph.VertexID(x) == u {
				continue // source slot holds SourceValue by construction
			}
			if p.Better(init[x], want[x]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
