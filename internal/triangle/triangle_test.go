package triangle_test

import (
	"testing"

	"tripoline/internal/engine"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/oracle"
	"tripoline/internal/props"
	"tripoline/internal/triangle"
)

// TestDeltaRunEqualsFullRun is the Theorem 4.4 check: seeding a monotonic
// async-safe evaluation with Δ(u,r) converges to exactly the same values
// as a from-scratch evaluation — for every problem, on random graphs, both
// directed and undirected, over several (u, r) choices.
func TestDeltaRunEqualsFullRun(t *testing.T) {
	for _, directed := range []bool{true, false} {
		for _, seed := range []uint64{1, 2} {
			g := graph.FromEdges(180, gen.Uniform(180, 1400, 16, seed), directed)
			for name, p := range props.Registry() {
				for _, pair := range [][2]graph.VertexID{{3, 0}, {40, 7}, {100, 100}, {0, 179}} {
					u, r := pair[0], pair[1]
					standing := oracle.BestPath(g, p, r) // property(r, x)
					var propUR uint64
					if directed {
						propUR = oracle.BestPathTo(g, p, r)[u] // property(u, r)
					} else {
						propUR = standing[u]
					}
					init := triangle.DeltaInit(p, u, propUR, standing)
					st := &engine.State{P: p, K: 1, N: len(init), Values: init}
					st.RunPush(g, []graph.VertexID{u}, []uint64{1})

					want := oracle.BestPath(g, p, u)
					for v := range want {
						if st.Values[v] != want[v] {
							t.Fatalf("%s directed=%v seed=%d u=%d r=%d: Δ-run[%d]=%d, full=%d",
								name, directed, seed, u, r, v, st.Values[v], want[v])
						}
					}
				}
			}
		}
	}
}

// TestDeltaSavesWork verifies the mechanism, not just correctness: on a
// connected undirected graph, Δ-based SSWP evaluation must touch far
// fewer vertices than the full evaluation (the §6.2 observation that
// min-max problems have near-total initial stability).
func TestDeltaSavesWork(t *testing.T) {
	g := graph.FromEdges(500, gen.Uniform(500, 6000, 16, 5), false)
	p := props.SSWP{}
	u, r := graph.VertexID(17), graph.VertexID(3)

	_, fullStats := engine.Run(g, p, []graph.VertexID{u})

	standing := oracle.BestPath(g, p, r)
	init := triangle.DeltaInit(p, u, standing[u], standing)
	st := &engine.State{P: p, K: 1, N: len(init), Values: init}
	deltaStats := st.RunPush(g, []graph.VertexID{u}, []uint64{1})

	if deltaStats.Activations*2 >= fullStats.Activations {
		t.Fatalf("Δ-based SSWP saved too little: %d vs %d activations",
			deltaStats.Activations, fullStats.Activations)
	}
}

func TestDeltaInitShape(t *testing.T) {
	p := props.SSSP{}
	standing := []uint64{5, 0, 7, props.Unreached}
	init := triangle.DeltaInit(p, 2, 10, standing)
	if init[0] != 15 || init[1] != 10 || init[3] != props.Unreached {
		t.Fatalf("init=%v", init)
	}
	if init[2] != p.SourceValue() {
		t.Fatalf("source slot = %d, want source value", init[2])
	}
}

func TestDeltaInitUnreachableRoot(t *testing.T) {
	// If property(u,r) is the init value, every Δ entry must degrade to
	// init — never an accidentally good value.
	p := props.SSSP{}
	standing := []uint64{1, 2, 3}
	init := triangle.DeltaInit(p, 0, p.InitValue(), standing)
	for i := 1; i < len(init); i++ {
		if init[i] != p.InitValue() {
			t.Fatalf("init[%d]=%d, want Unreached", i, init[i])
		}
	}
}

func TestDeltaInitIntoVariantsMatchColumn(t *testing.T) {
	p := props.SSWP{}
	standing := []uint64{9, 4, 6}
	b := triangle.DeltaInit(p, 1, 5, standing)

	a := make([]uint64, len(standing))
	triangle.DeltaInitInto(a, p, 1, 5, standing)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("into[%d]=%d, column=%d", i, a[i], b[i])
		}
	}

	// Strided fallback: slot 1 of a two-wide interleaved array.
	strided := make([]uint64, 2*len(standing))
	triangle.DeltaInitStridedInto(strided, 2, 1, p, 1, 5, standing)
	for i := range b {
		if strided[i*2+1] != b[i] {
			t.Fatalf("strided[%d]=%d, column=%d", i, strided[i*2+1], b[i])
		}
		if strided[i*2] != 0 {
			t.Fatalf("strided write leaked into slot 0 at %d", i)
		}
	}
}

func TestHolds(t *testing.T) {
	p := props.SSSP{}
	if !triangle.Holds(p, 3, 4, 7) {
		t.Fatal("3+4 ≥ 7 must hold")
	}
	if !triangle.Holds(p, 3, 4, 5) {
		t.Fatal("3+4 ≥ 5 must hold")
	}
	if triangle.Holds(p, 3, 4, 8) {
		t.Fatal("3+4 ≥ 8 must not hold")
	}
}

func TestSelectStanding(t *testing.T) {
	p := props.SSSP{}
	slot, val := triangle.SelectStanding(p, []uint64{9, 2, 5})
	if slot != 1 || val != 2 {
		t.Fatalf("selected %d/%d", slot, val)
	}
	// Maximizing problems pick the largest.
	w := props.SSWP{}
	slot, val = triangle.SelectStanding(w, []uint64{9, 2, 5})
	if slot != 0 || val != 9 {
		t.Fatalf("SSWP selected %d/%d", slot, val)
	}
	// All-unreachable candidates fall back to slot 0.
	slot, val = triangle.SelectStanding(p, []uint64{props.Unreached, props.Unreached})
	if slot != 0 || val != props.Unreached {
		t.Fatalf("fallback %d/%d", slot, val)
	}
}
