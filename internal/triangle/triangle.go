// Package triangle implements the graph triangle inequality abstraction of
// §3 and the Δ-based incremental initialization of §4.1 of the paper.
//
// Given a standing query q(r) whose converged property array holds
// property(r, x) for every x, and the scalar property(u, r) linking the
// user query's source u to r, the Δ initialization
//
//	Δ(u,r)[x] = property(u,r) ⊕ property(r,x)
//
// is, by the problem's triangle inequality, never better than the true
// converged value property(u,x). Seeding a monotonic, async-safe
// evaluation with Δ(u,r) therefore converges to exactly the same result
// as a from-scratch evaluation (Theorem 4.4), usually after far less work.
package triangle

import (
	"tripoline/internal/engine"
	"tripoline/internal/graph"
	"tripoline/internal/parallel"
)

// DeltaInit materializes Δ(u,r) for a user query with source u: for each
// vertex x, Combine(propUR, standing[x]). standing must hold
// property(r, x) for all x (stride-K column access is handled by the
// caller via engine.State.Column or the stride arguments below). The
// source vertex u is reset to the problem's source value, and r's own
// entry becomes Combine(propUR, property(r,r)).
//
// The returned slice is freshly allocated and suitable as the Values of a
// K=1 engine.State.
func DeltaInit(p engine.Problem, u graph.VertexID, propUR uint64, standing []uint64) []uint64 {
	n := len(standing)
	init := make([]uint64, n)
	parallel.For(n, func(x int) {
		init[x] = p.Combine(propUR, standing[x])
	})
	if int(u) < n {
		init[u] = p.SourceValue()
	}
	return init
}

// DeltaInitInto is DeltaInit writing into dst (len(dst) ≥ len(standing)),
// so batch paths can fill a width-K state's column views in place with no
// intermediate allocation or copy.
func DeltaInitInto(dst []uint64, p engine.Problem, u graph.VertexID, propUR uint64, standing []uint64) {
	n := len(standing)
	parallel.For(n, func(x int) {
		dst[x] = p.Combine(propUR, standing[x])
	})
	if int(u) < n {
		dst[u] = p.SourceValue()
	}
}

// DeltaInitStridedInto is DeltaInit writing slot j of a width-stride
// interleaved array (dst[x*stride+j] for every x covered by standing),
// in parallel, with no intermediate column. It is the fallback for
// states whose layout has no contiguous column to hand to DeltaInitInto.
func DeltaInitStridedInto(dst []uint64, stride, j int, p engine.Problem, u graph.VertexID, propUR uint64, standing []uint64) {
	n := len(standing)
	parallel.For(n, func(x int) {
		dst[x*stride+j] = p.Combine(propUR, standing[x])
	})
	if int(u) < n {
		dst[int(u)*stride+j] = p.SourceValue()
	}
}

// Holds verifies the triangle inequality for one concrete triple:
// property(u,x) must be at least as good as Combine(property(u,r),
// property(r,x)) — i.e. the combined value must NOT be strictly better
// than the direct one. Used by tests and available for runtime audits.
func Holds(p engine.Problem, propUR, propRX, propUX uint64) bool {
	combined := p.Combine(propUR, propRX)
	return !p.Better(combined, propUX)
}

// SelectStanding implements the runtime standing-query pick of Eq. 15:
// among the K standing queries, choose the one whose property(u, r_k) is
// best under the problem's order. propUR[k] must hold property(u, r_k)
// (for directed graphs, taken from the reversed standing state q⁻¹).
// It returns the chosen slot and its property value. If every candidate
// is at the init value (u cannot reach any standing root), slot 0 is
// returned with the init value — Δ then degenerates to the default
// initialization and the evaluation is effectively from scratch, which is
// still correct.
func SelectStanding(p engine.Problem, propUR []uint64) (slot int, val uint64) {
	slot, val = 0, propUR[0]
	for k := 1; k < len(propUR); k++ {
		if p.Better(propUR[k], val) {
			slot, val = k, propUR[k]
		}
	}
	return slot, val
}
