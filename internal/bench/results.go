package bench

import (
	"encoding/json"
	"io"
	"time"
)

// Report is the machine-readable form of one full evaluation run,
// written by WriteJSON and consumed by external plotting/diffing tools
// (EXPERIMENTS.md records the human-readable digest).
type Report struct {
	// Meta describes the run configuration.
	Meta struct {
		Scale     int       `json:"scale"`
		Queries   int       `json:"queries"`
		Repeats   int       `json:"repeats"`
		K         int       `json:"k"`
		BatchSize int       `json:"batch_size"`
		Seed      uint64    `json:"seed"`
		Timestamp time.Time `json:"timestamp"`
	} `json:"meta"`
	Table3            []Table3JSON                `json:"table3,omitempty"`
	Table4            []Table4JSON                `json:"table4,omitempty"`
	Table5            []Table5JSON                `json:"table5,omitempty"`
	DD                []DDResult                  `json:"dd,omitempty"`
	Fig11             map[string][]float64        `json:"figure11,omitempty"`
	Fig12             map[string][]Figure12Bucket `json:"figure12,omitempty"`
	AblationFlat      []AblationFlatJSON          `json:"ablation_flat,omitempty"`
	AblationDeltaFlat []AblationDeltaFlatJSON     `json:"ablation_deltaflat,omitempty"`
	AblationFusedK    []AblationFusedKJSON        `json:"ablation_fusedk,omitempty"`
	AblationShard     []AblationShardJSON         `json:"ablation_shard,omitempty"`
}

// AblationShardJSON flattens an AblationShardCell for serialization.
type AblationShardJSON struct {
	Graph            string  `json:"graph"`
	LogN             int     `json:"logn"`
	Shards           int     `json:"shards"`
	Batches          int     `json:"batches"`
	EdgesApplied     int64   `json:"edges_applied"`
	ApplySec         float64 `json:"apply_sec"`
	ApplyEdgesPerSec float64 `json:"apply_edges_per_sec"`
	Queries          int     `json:"queries"`
	DeltaQuerySec    float64 `json:"delta_query_sec"`
	DeltaQPS         float64 `json:"delta_qps"`
	FullQuerySec     float64 `json:"full_query_sec"`
	FullQPS          float64 `json:"full_qps"`
	ApplySpeedup     float64 `json:"apply_speedup"`
	QuerySpeedup     float64 `json:"query_speedup"`
	FullSpeedup      float64 `json:"full_speedup"`
	Verified         bool    `json:"verified"`
}

// AblationFusedKJSON flattens an AblationFusedKCell for serialization.
type AblationFusedKJSON struct {
	Graph            string  `json:"graph"`
	LogN             int     `json:"logn"`
	K                int     `json:"k"`
	Batches          int     `json:"batches"`
	EdgesApplied     int64   `json:"edges_applied"`
	FusedRefreshSec  float64 `json:"fused_refresh_sec"`
	LegacyRefreshSec float64 `json:"legacy_refresh_sec"`
	FusedNsPerEdge   float64 `json:"fused_ns_per_edge"`
	LegacyNsPerEdge  float64 `json:"legacy_ns_per_edge"`
	Speedup          float64 `json:"speedup"`
	Hoists           int64   `json:"hoists"`
	GateSkips        int64   `json:"gate_skips"`
	BlockSweeps      int64   `json:"block_sweeps"`
	Verified         bool    `json:"verified"`
}

// AblationDeltaFlatJSON flattens an AblationDeltaFlatResult for
// serialization.
type AblationDeltaFlatJSON struct {
	Graph           string  `json:"graph"`
	BatchSize       int     `json:"batch_size"`
	ChangedSources  int     `json:"changed_sources"`
	TouchedFrac     float64 `json:"touched_frac"`
	DeltaBuildSec   float64 `json:"delta_build_sec"`
	FullBuildSec    float64 `json:"full_build_sec"`
	Speedup         float64 `json:"speedup"`
	CopiedBytes     int64   `json:"copied_bytes"`
	WalkedBytes     int64   `json:"walked_bytes"`
	RecyclerHitRate float64 `json:"recycler_hit_rate"`
}

// AblationFlatJSON flattens an AblationFlatResult for serialization.
type AblationFlatJSON struct {
	Graph           string  `json:"graph"`
	Problem         string  `json:"problem"`
	K               int     `json:"k"`
	Queries         int     `json:"queries"`
	FlattenBuildSec float64 `json:"flatten_build_sec"`
	TreeStandingSec float64 `json:"tree_standing_sec"`
	FlatStandingSec float64 `json:"flat_standing_sec"`
	TreeDeltaSec    float64 `json:"tree_delta_sec"`
	FlatDeltaSec    float64 `json:"flat_delta_sec"`
	TreeFullSec     float64 `json:"tree_full_sec"`
	FlatFullSec     float64 `json:"flat_full_sec"`
	StandingSpeedup float64 `json:"standing_speedup"`
	DeltaSpeedup    float64 `json:"delta_speedup"`
	FullSpeedup     float64 `json:"full_speedup"`
}

// Table3JSON flattens a Table3Cell for serialization.
type Table3JSON struct {
	Graph        string  `json:"graph"`
	LoadFrac     float64 `json:"load_frac"`
	Problem      string  `json:"problem"`
	MeanSpeedup  float64 `json:"mean_speedup"`
	StdevSpeedup float64 `json:"stdev_speedup"`
	MeanDeltaSec float64 `json:"mean_delta_sec"`
	Queries      int     `json:"queries"`
}

// Table4JSON is one activation-ratio entry.
type Table4JSON struct {
	Graph        string  `json:"graph"`
	Problem      string  `json:"problem"`
	MeanActRatio float64 `json:"mean_act_ratio"`
	StdActRatio  float64 `json:"std_act_ratio"`
}

// Table5JSON is one K-sweep entry.
type Table5JSON struct {
	K           int                `json:"k"`
	Speedup     map[string]float64 `json:"speedup"`
	StandingSec map[string]float64 `json:"standing_sec"`
}

// NewReport captures the options metadata.
func NewReport(o Options, now time.Time) *Report {
	o = o.withDefaults()
	r := &Report{}
	r.Meta.Scale = o.Scale
	r.Meta.Queries = o.Queries
	r.Meta.Repeats = o.Repeats
	r.Meta.K = o.K
	r.Meta.BatchSize = o.BatchSize
	r.Meta.Seed = o.Seed
	r.Meta.Timestamp = now
	return r
}

// AddTable3 records Table 3 cells.
func (r *Report) AddTable3(cells []Table3Cell) {
	for _, c := range cells {
		r.Table3 = append(r.Table3, Table3JSON{
			Graph: c.Graph, LoadFrac: c.Frac, Problem: c.Problem,
			MeanSpeedup: c.Agg.MeanSpeedup, StdevSpeedup: c.Agg.StdevSpeedup,
			MeanDeltaSec: c.Agg.MeanDeltaSec, Queries: c.Agg.N,
		})
	}
}

// AddTable4 records activation ratios.
func (r *Report) AddTable4(res map[string]map[string]Aggregate) {
	for p, per := range res {
		for g, agg := range per {
			r.Table4 = append(r.Table4, Table4JSON{
				Graph: g, Problem: p,
				MeanActRatio: agg.MeanActRatio, StdActRatio: agg.StdActRatio,
			})
		}
	}
}

// AddTable5 records the K sweep.
func (r *Report) AddTable5(rows []Table5Row) {
	for _, row := range rows {
		j := Table5JSON{K: row.K, Speedup: row.Speedup, StandingSec: map[string]float64{}}
		for p, d := range row.Standing {
			j.StandingSec[p] = d.Seconds()
		}
		r.Table5 = append(r.Table5, j)
	}
}

// AddAblationFlat records one flat-mirror ablation point.
func (r *Report) AddAblationFlat(a AblationFlatResult) {
	r.AblationFlat = append(r.AblationFlat, AblationFlatJSON{
		Graph: a.Graph, Problem: a.Problem, K: a.K, Queries: a.Queries,
		FlattenBuildSec: a.FlattenBuild.Seconds(),
		TreeStandingSec: a.TreeStanding.Seconds(),
		FlatStandingSec: a.FlatStanding.Seconds(),
		TreeDeltaSec:    a.TreeDeltaSec, FlatDeltaSec: a.FlatDeltaSec,
		TreeFullSec: a.TreeFullSec, FlatFullSec: a.FlatFullSec,
		StandingSpeedup: a.StandingSpeedup,
		DeltaSpeedup:    a.DeltaSpeedup,
		FullSpeedup:     a.FullSpeedup,
	})
}

// AddAblationDeltaFlat records delta-flatten ablation points.
func (r *Report) AddAblationDeltaFlat(rs []AblationDeltaFlatResult) {
	for _, a := range rs {
		r.AblationDeltaFlat = append(r.AblationDeltaFlat, AblationDeltaFlatJSON{
			Graph: a.Graph, BatchSize: a.BatchSize,
			ChangedSources: a.ChangedSources, TouchedFrac: a.TouchedFrac,
			DeltaBuildSec: a.DeltaBuild.Seconds(), FullBuildSec: a.FullBuild.Seconds(),
			Speedup: a.Speedup, CopiedBytes: a.CopiedBytes, WalkedBytes: a.WalkedBytes,
			RecyclerHitRate: a.RecyclerHitRate,
		})
	}
}

// AddAblationFusedK records fused-kernel width-sweep points.
func (r *Report) AddAblationFusedK(cells []AblationFusedKCell) {
	for _, c := range cells {
		r.AblationFusedK = append(r.AblationFusedK, AblationFusedKJSON{
			Graph: c.Graph, LogN: c.LogN, K: c.K,
			Batches: c.Batches, EdgesApplied: c.EdgesApplied,
			FusedRefreshSec:  c.FusedRefresh.Seconds(),
			LegacyRefreshSec: c.LegacyRefresh.Seconds(),
			FusedNsPerEdge:   c.FusedNsPerEdge,
			LegacyNsPerEdge:  c.LegacyNsPerEdge,
			Speedup:          c.Speedup,
			Hoists:           c.Hoists, GateSkips: c.GateSkips, BlockSweeps: c.BlockSweeps,
			Verified: c.Verified,
		})
	}
}

// AddAblationShard records shard-count sweep points.
func (r *Report) AddAblationShard(cells []AblationShardCell) {
	for _, c := range cells {
		r.AblationShard = append(r.AblationShard, AblationShardJSON{
			Graph: c.Graph, LogN: c.LogN, Shards: c.Shards,
			Batches: c.Batches, EdgesApplied: c.EdgesApplied,
			ApplySec:         c.ApplyTotal.Seconds(),
			ApplyEdgesPerSec: c.ApplyEdgesPerSec,
			Queries:          c.Queries,
			DeltaQuerySec:    c.QueryTotal.Seconds(),
			DeltaQPS:         c.QueriesPerSec,
			FullQuerySec:     c.FullTotal.Seconds(),
			FullQPS:          c.FullPerSec,
			ApplySpeedup:     c.ApplySpeedup,
			QuerySpeedup:     c.QuerySpeedup,
			FullSpeedup:      c.FullSpeedup,
			Verified:         c.Verified,
		})
	}
}

// WriteJSON serializes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
