package bench

import (
	"fmt"
	"io"

	"tripoline/internal/graph"
	"tripoline/internal/oracle"
	"tripoline/internal/props"
)

// Verify is the release self-check: on each standard graph it streams
// several batches, then cross-validates, for every problem,
//
//   - the Δ-based user query against the from-scratch evaluation, and
//   - both against the independent sequential oracle,
//
// plus a deletion batch followed by the same checks (exercising the
// trimmed recovery). It returns the number of failures and writes a
// PASS/FAIL line per configuration.
func Verify(w io.Writer, scale, queries int, seed uint64) int {
	failures := 0
	problems := []string{"BFS", "SSSP", "SSWP", "SSNP", "Viterbi", "SSR"}
	for _, gname := range []string{"OR-sim", "LJ-sim"} {
		setup, err := Prepare(gname, scale, 0.6, 5000, 4, 2, problems, seed)
		if err != nil {
			fmt.Fprintf(w, "FAIL %s: %v\n", gname, err)
			failures++
			continue
		}
		failures += verifySetup(w, setup, gname, queries, seed)

		// Deletion phase: remove a slice of the initial edges, then
		// re-verify (trimmed recovery under test).
		del := setup.Stream.Initial[:200]
		setup.Sys.ApplyDeletions(del)
		failures += verifySetup(w, setup, gname+"+del", queries, seed+1)
	}
	if failures == 0 {
		fmt.Fprintln(w, "VERIFY PASS")
	} else {
		fmt.Fprintf(w, "VERIFY FAIL: %d failures\n", failures)
	}
	return failures
}

func verifySetup(w io.Writer, setup *Setup, label string, queries int, seed uint64) int {
	failures := 0
	reg := props.Registry()
	qs := setup.SampleQueries(queries, seed+99)
	csr := setup.G.Acquire().CSR(setup.G.Directed())
	for _, name := range setup.Sys.Enabled() {
		p := reg[name]
		bad := 0
		for _, u := range qs {
			inc, err := setup.Sys.Query(name, u)
			if err != nil {
				bad++
				continue
			}
			full, err := setup.Sys.QueryFull(name, u)
			if err != nil {
				bad++
				continue
			}
			want := oracle.BestPath(csr, p, graph.VertexID(u))
			for v := range want {
				if inc.Values[v] != want[v] || full.Values[v] != want[v] {
					bad++
					break
				}
			}
		}
		status := "PASS"
		if bad > 0 {
			status = fmt.Sprintf("FAIL(%d)", bad)
			failures += bad
		}
		fmt.Fprintf(w, "%-6s %-12s %-8s (%d queries vs oracle)\n", status, label, name, len(qs))
	}
	return failures
}
