package bench

import (
	"fmt"
	"io"
	"time"

	"tripoline/internal/engine"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/props"
	"tripoline/internal/standing"
	"tripoline/internal/streamgraph"
	"tripoline/internal/triangle"
)

// This file holds ablations of Tripoline's individual design choices —
// not paper artifacts, but the measurements that justify the §4.5 and
// §4.2 design decisions the paper asserts:
//
//   - batch mode: maintaining K standing queries under one combined
//     frontier vs K separate single-query evaluations;
//   - standing-query selection: Eq. 15's best-property root vs a random
//     or the worst root;
//   - dual-model evaluation: the pull-based reversed query on the
//     one-way representation vs materializing the transpose and pushing.

// AblationBatchModeResult compares the two standing maintenance modes.
type AblationBatchModeResult struct {
	K              int
	BatchedTime    time.Duration // one K-wide manager (Tripoline's mode)
	SeparateTime   time.Duration // K independent single-query managers
	BatchedSpeedup float64
}

// AblationBatchMode measures incremental standing-query maintenance in
// batch mode versus separately, on the named graph at 60% with one
// update batch, for SSSP.
func AblationBatchMode(w io.Writer, gname string, scale, k, batchSize int, seed uint64) AblationBatchModeResult {
	cfg, ok := gen.ByName(gname, scale)
	if !ok {
		panic("bench: unknown graph " + gname)
	}
	edges := gen.RMAT(cfg)
	stream := gen.MakeStream(cfg.N(), edges, cfg.Directed, 0.6, batchSize, seed)

	build := func() (*streamgraph.Graph, []graph.VertexID) {
		g := streamgraph.New(cfg.N(), cfg.Directed)
		g.InsertEdges(stream.Initial)
		roots := topRoots(g.Acquire(), k)
		return g, roots
	}

	res := AblationBatchModeResult{K: k}

	// Batched: one manager with K slots.
	g, roots := build()
	batched := standing.New(props.SSSP{}, g.Acquire(), roots, cfg.Directed)
	snap, changed := g.InsertEdges(stream.Batches[0])
	start := time.Now()
	batched.Update(snap, changed)
	res.BatchedTime = time.Since(start)

	// Separate: K single-query managers updated one after another.
	g2, roots2 := build()
	managers := make([]*standing.Manager, k)
	for i, r := range roots2 {
		managers[i] = standing.New(props.SSSP{}, g2.Acquire(), []graph.VertexID{r}, cfg.Directed)
	}
	snap2, changed2 := g2.InsertEdges(stream.Batches[0])
	start = time.Now()
	for _, m := range managers {
		m.Update(snap2, changed2)
	}
	res.SeparateTime = time.Since(start)

	if res.BatchedTime > 0 {
		res.BatchedSpeedup = float64(res.SeparateTime) / float64(res.BatchedTime)
	}
	fmt.Fprintf(w, "Ablation (batch mode, %s, K=%d): batched=%v separate=%v → %.2fx\n",
		gname, k, res.BatchedTime.Round(time.Microsecond),
		res.SeparateTime.Round(time.Microsecond), res.BatchedSpeedup)
	return res
}

func topRoots(s *streamgraph.Snapshot, k int) []graph.VertexID {
	// local copy of core.TopDegreeRoots to avoid a bench→core dependency
	// cycle concern; identical selection rule (Eq. 14).
	type dv struct {
		d int
		v graph.VertexID
	}
	n := s.NumVertices()
	all := make([]dv, n)
	for v := 0; v < n; v++ {
		all[v] = dv{d: s.Degree(graph.VertexID(v)), v: graph.VertexID(v)}
	}
	// selection of top k by degree (k is small; partial selection sort)
	if k > n {
		k = n
	}
	out := make([]graph.VertexID, 0, k)
	used := make([]bool, n)
	for i := 0; i < k; i++ {
		best := -1
		for j := range all {
			if used[j] {
				continue
			}
			if best == -1 || all[j].d > all[best].d ||
				(all[j].d == all[best].d && all[j].v < all[best].v) {
				best = j
			}
		}
		used[best] = true
		out = append(out, all[best].v)
	}
	return out
}

// AblationSelectionResult compares standing-root selection policies.
type AblationSelectionResult struct {
	Problem      string
	BestSpeedup  float64 // Eq. 15: argmin property(u,r)
	FixedSpeedup float64 // always slot 0 (highest-degree root)
	WorstSpeedup float64 // argmax property(u,r) — the anti-heuristic
}

// AblationSelection measures Δ-based speedups under three standing-root
// selection policies on the named graph at 60%.
func AblationSelection(w io.Writer, gname, problem string, scale, k, queries int, seed uint64) AblationSelectionResult {
	setup, err := Prepare(gname, scale, 0.6, 10_000, k, 0, []string{problem}, seed)
	if err != nil {
		panic(err)
	}
	// Reach the manager through a throwaway query to learn nothing — we
	// instead re-derive Δ inits through a dedicated manager so the three
	// policies share one standing state.
	cfgG := setup.G
	snap := cfgG.Acquire()
	roots := topRoots(snap, k)
	p := props.Registry()[problem]
	mgr := standing.New(p, snap, roots, cfgG.Directed())
	qs := setup.SampleQueries(queries, seed+77)

	res := AblationSelectionResult{Problem: problem}
	policies := []struct {
		name string
		pick func(propUR []uint64) int
		out  *float64
	}{
		{"best", func(pu []uint64) int { s, _ := triangle.SelectStanding(p, pu); return s }, &res.BestSpeedup},
		{"fixed", func([]uint64) int { return 0 }, &res.FixedSpeedup},
		{"worst", func(pu []uint64) int {
			worst := 0
			for i := 1; i < len(pu); i++ {
				if p.Better(pu[worst], pu[i]) {
					worst = i
				}
			}
			return worst
		}, &res.WorstSpeedup},
	}
	for _, pol := range policies {
		var sum float64
		for _, u := range qs {
			full, fullT := timedRun(snap, p, u)
			pu := mgr.PropUR(u)
			slot := pol.pick(pu)
			init := triangle.DeltaInit(p, u, pu[slot], mgr.StandingColumn(slot))
			st := &engine.State{P: p, K: 1, N: len(init), Values: init}
			t0 := time.Now()
			st.RunPush(snap, []graph.VertexID{u}, []uint64{1})
			dT := time.Since(t0)
			for v := range full.Values {
				if full.Values[v] != st.Values[v] {
					panic("ablation: selection policy changed results")
				}
			}
			if dT > 0 {
				sum += float64(fullT) / float64(dT)
			}
		}
		*pol.out = sum / float64(len(qs))
	}
	fmt.Fprintf(w, "Ablation (selection, %s on %s, K=%d): best=%.2fx fixed=%.2fx worst=%.2fx\n",
		problem, gname, k, res.BestSpeedup, res.FixedSpeedup, res.WorstSpeedup)
	return res
}

func timedRun(g engine.View, p engine.Problem, u graph.VertexID) (*engine.State, time.Duration) {
	t0 := time.Now()
	st, _ := engine.Run(g, p, []graph.VertexID{u})
	return st, time.Since(t0)
}

// AblationDualModelResult compares the two ways of computing the
// reversed standing query q⁻¹(r) on a directed graph.
type AblationDualModelResult struct {
	PullTime      time.Duration // dual-model: pull over out-edges (§4.2)
	TransposeTime time.Duration // build in-edge index + push over it
	ExtraArcs     int64         // arcs materialized by the transpose
}

// AblationDualModel measures computing property(x, r) for all x on a
// directed graph: Tripoline's pull-based dual-model evaluation versus
// materializing the transposed graph and pushing — the §4.2 tradeoff
// (the transpose is faster per query but doubles edge storage and
// update cost; the measurement reports both sides).
func AblationDualModel(w io.Writer, gname string, scale int, seed uint64) AblationDualModelResult {
	cfg, ok := gen.ByName(gname, scale)
	if !ok || !cfg.Directed {
		panic("bench: dual-model ablation needs a directed standard graph")
	}
	edges := gen.RMAT(cfg)
	g := streamgraph.FromEdges(cfg.N(), edges, true)
	snap := g.Acquire()
	root := topRoots(snap, 1)[0]
	p := props.SSSP{}

	var res AblationDualModelResult
	t0 := time.Now()
	pull, _ := engine.RunReverse(snap, p, []graph.VertexID{root})
	res.PullTime = time.Since(t0)

	t1 := time.Now()
	transposed := snap.CSR(true).Transpose()
	push, _ := engine.Run(transposed, p, []graph.VertexID{root})
	res.TransposeTime = time.Since(t1)
	res.ExtraArcs = transposed.NumEdges()

	for v := 0; v < cfg.N(); v++ {
		if pull.Values[v] != push.Values[v] {
			panic("ablation: dual-model and transpose disagree")
		}
	}
	fmt.Fprintf(w, "Ablation (dual-model, %s): pull=%v transpose(build+push)=%v extra arcs=%d\n",
		gname, res.PullTime.Round(time.Microsecond),
		res.TransposeTime.Round(time.Microsecond), res.ExtraArcs)
	return res
}
