package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/shard"
	"tripoline/internal/xrand"
)

// AblationShardCell is one shard-count point of the sharded-core
// ablation: batch-apply and query throughput of a shard.Router with S
// hash-partitioned core.System instances, against the identical edge
// stream and query mix. S=1 is the unsharded baseline (the router
// delegates everything to its single system), so the speedup columns
// read directly as "what partitioning buys".
type AblationShardCell struct {
	Graph  string
	LogN   int
	Shards int
	// Update-batch application.
	Batches          int
	EdgesApplied     int64
	ApplyTotal       time.Duration
	ApplyEdgesPerSec float64
	// Incremental (Δ-initialized, scatter/gather) user queries.
	Queries       int
	QueryTotal    time.Duration
	QueriesPerSec float64
	// From-scratch full queries over the union graph.
	FullTotal  time.Duration
	FullPerSec float64
	// Speedups relative to the S=1 cell of the same sweep.
	ApplySpeedup float64
	QuerySpeedup float64
	FullSpeedup  float64
	// Verified is true when every query result matched the S=1 run bit
	// for bit (the relaxation fixpoint is unique, so divergence is a
	// router bug, not noise).
	Verified bool
}

// maxShardBatches bounds the replayed update batches per repeat so the
// sweep stays in minutes at LogN=16.
const maxShardBatches = 12

// shardRepeats replays the deterministic sequence this many times per
// shard count, keeping the fastest totals (minimum-of-repeats, the
// least-noise estimator on a shared machine).
const shardRepeats = 3

// shardQueries is the per-repeat query count (each issued both
// incrementally and as a full evaluation).
const shardQueries = 12

// AblationShard sweeps the shard count over an RMAT graph with 2^logn
// vertices: for each S it loads 60% of the stream, enables K standing
// SSSP queries per shard, then measures (a) applying the remaining
// update batches and (b) a fixed mix of incremental and full user
// queries. Every S>1 run's query values are verified bit for bit
// against the S=1 run's; a divergence panics rather than reporting a
// tainted speedup.
func AblationShard(w io.Writer, logn, batchSize, k int, shardCounts []int, seed uint64) []AblationShardCell {
	cfg := gen.Config{Name: fmt.Sprintf("RMAT-%d", logn), LogN: logn, AvgDegree: 16, Seed: seed}
	edges := gen.RMAT(cfg)
	stream := gen.MakeStream(cfg.N(), edges, cfg.Directed, 0.6, batchSize, seed)
	batches := stream.Batches
	if len(batches) > maxShardBatches {
		batches = batches[:maxShardBatches]
	}
	qrng := xrand.New(seed ^ 0x5a5a)
	queries := make([]graph.VertexID, shardQueries)
	for i := range queries {
		queries[i] = graph.VertexID(qrng.Uint64() % uint64(cfg.N()))
	}

	type runResult struct {
		applyTotal time.Duration
		queryTotal time.Duration
		fullTotal  time.Duration
		edges      int64
		values     [][]uint64 // per query, for cross-S verification
	}
	runOnce := func(s int) runResult {
		r := shard.New(cfg.N(), cfg.Directed, s, k)
		r.ApplyBatch(stream.Initial) // untimed initial load
		if err := r.Enable("SSSP"); err != nil {
			panic(err)
		}
		var res runResult
		for _, b := range batches {
			t0 := time.Now()
			r.ApplyBatch(b)
			res.applyTotal += time.Since(t0)
			res.edges += int64(len(b))
		}
		for _, u := range queries {
			t0 := time.Now()
			qr, err := r.Query("SSSP", u)
			res.queryTotal += time.Since(t0)
			if err != nil {
				panic(err)
			}
			res.values = append(res.values, qr.Values)
			t1 := time.Now()
			fr, err := r.QueryFull("SSSP", u)
			res.fullTotal += time.Since(t1)
			if err != nil {
				panic(err)
			}
			for v := range qr.Values {
				if qr.Values[v] != fr.Values[v] {
					panic(fmt.Sprintf("bench: shard S=%d query %d: incremental and full disagree at %d", s, u, v))
				}
			}
		}
		return res
	}

	var (
		cells                          []AblationShardCell
		baseline                       *runResult
		baseApply, baseQuery, baseFull time.Duration
	)
	for _, s := range shardCounts {
		best := runOnce(s)
		for rep := 1; rep < shardRepeats; rep++ {
			r := runOnce(s)
			if r.applyTotal < best.applyTotal {
				best.applyTotal = r.applyTotal
			}
			if r.queryTotal < best.queryTotal {
				best.queryTotal = r.queryTotal
			}
			if r.fullTotal < best.fullTotal {
				best.fullTotal = r.fullTotal
			}
		}
		cell := AblationShardCell{
			Graph: cfg.Name, LogN: logn, Shards: s,
			Batches: len(batches), EdgesApplied: best.edges,
			ApplyTotal: best.applyTotal,
			Queries:    len(queries),
			QueryTotal: best.queryTotal,
			FullTotal:  best.fullTotal,
			Verified:   true,
		}
		if best.applyTotal > 0 {
			cell.ApplyEdgesPerSec = float64(best.edges) / best.applyTotal.Seconds()
		}
		if best.queryTotal > 0 {
			cell.QueriesPerSec = float64(len(queries)) / best.queryTotal.Seconds()
		}
		if best.fullTotal > 0 {
			cell.FullPerSec = float64(len(queries)) / best.fullTotal.Seconds()
		}
		if baseline == nil {
			b := best
			baseline = &b
			baseApply, baseQuery, baseFull = best.applyTotal, best.queryTotal, best.fullTotal
		} else {
			for q := range queries {
				bv, sv := baseline.values[q], best.values[q]
				if len(bv) != len(sv) {
					panic(fmt.Sprintf("bench: shard S=%d query %d: length %d vs %d", s, queries[q], len(sv), len(bv)))
				}
				for v := range bv {
					if bv[v] != sv[v] {
						panic(fmt.Sprintf("bench: shard S=%d query %d vertex %d: %#x vs baseline %#x",
							s, queries[q], v, sv[v], bv[v]))
					}
				}
			}
		}
		if baseApply > 0 && cell.ApplyTotal > 0 {
			cell.ApplySpeedup = float64(baseApply) / float64(cell.ApplyTotal)
		}
		if baseQuery > 0 && cell.QueryTotal > 0 {
			cell.QuerySpeedup = float64(baseQuery) / float64(cell.QueryTotal)
		}
		if baseFull > 0 && cell.FullTotal > 0 {
			cell.FullSpeedup = float64(baseFull) / float64(cell.FullTotal)
		}
		cells = append(cells, cell)
		c := cell
		fmt.Fprintf(w, "Ablation (shard, %s, S=%d): apply=%.0f edges/s (%.2fx) Δ-query=%.2f q/s (%.2fx) full=%.2f q/s (%.2fx) [batches=%d queries=%d verified=%v]\n",
			cfg.Name, s, c.ApplyEdgesPerSec, c.ApplySpeedup,
			c.QueriesPerSec, c.QuerySpeedup, c.FullPerSec, c.FullSpeedup,
			c.Batches, c.Queries, c.Verified)
	}
	return cells
}

// WriteShardBenchJSON serializes the shard sweep in the dashboard
// data.js shape (same format as the kernel sweep), one entry with three
// series per shard count.
func WriteShardBenchJSON(w io.Writer, cells []AblationShardCell, commit string, ts time.Time) error {
	entry := kernelBenchEntry{
		Commit: kernelBenchCommit{ID: commit, Message: "sharded core sweep", Timestamp: ts.UTC().Format(time.RFC3339)},
		Date:   ts.UnixMilli(),
		Tool:   "go",
	}
	for _, c := range cells {
		base := fmt.Sprintf("shard/%s/S=%d", c.Graph, c.Shards)
		extra := fmt.Sprintf("apply_speedup=%.2fx query_speedup=%.2fx verified=%v", c.ApplySpeedup, c.QuerySpeedup, c.Verified)
		entry.Benches = append(entry.Benches,
			kernelBench{Name: base + "/apply_edges_per_sec", Value: c.ApplyEdgesPerSec, Unit: "edges/s", Extra: extra},
			kernelBench{Name: base + "/delta_queries_per_sec", Value: c.QueriesPerSec, Unit: "q/s"},
			kernelBench{Name: base + "/full_queries_per_sec", Value: c.FullPerSec, Unit: "q/s"},
		)
	}
	file := kernelBenchFile{
		LastUpdate: ts.UnixMilli(),
		Entries:    map[string][]kernelBenchEntry{"Shards": {entry}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}
