package bench

import (
	"fmt"
	"io"
	"time"

	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/streamgraph"
)

// AblationDeltaFlatResult prices mirror maintenance for one batch size
// on one graph: the delta patch from the parent mirror against a full
// rebuild of the same snapshot, plus what the delta actually did (bytes
// bulk-copied vs. walked out of the C-tree) and how well the slab
// recycler served the builds.
type AblationDeltaFlatResult struct {
	Graph          string
	BatchSize      int
	ChangedSources int
	// TouchedFrac is changed sources over vertices — the regime where
	// delta-patching wins is TouchedFrac ≪ 1.
	TouchedFrac float64
	DeltaBuild  time.Duration
	FullBuild   time.Duration
	// Speedup is FullBuild/DeltaBuild (>1 means the delta path won).
	Speedup         float64
	CopiedBytes     int64
	WalkedBytes     int64
	RecyclerHitRate float64
}

// AblationDeltaFlat measures delta-patched mirror maintenance on the
// named graph: the graph is loaded to 60%, then consecutive disjoint
// batches of each size are applied and both build paths are timed on
// the resulting snapshot (minimum of repeats runs; each run releases
// its mirror so the recycler serves steady-state slabs). Each delta
// mirror is also verified against the snapshot's adjacency, so the
// ablation doubles as an equivalence check at bench scale.
func AblationDeltaFlat(w io.Writer, gname string, scale int, sizes []int, repeats int, seed uint64) []AblationDeltaFlatResult {
	cfg, ok := gen.ByName(gname, scale)
	if !ok {
		panic("bench: unknown graph " + gname)
	}
	if len(sizes) == 0 {
		sizes = []int{100, 1_000, 10_000, 100_000}
	}
	// Builds are ms-scale, so timing is min-of-N; floor N so the default
	// -repeats 1 still measures patch work rather than scheduler noise.
	if repeats < 7 {
		repeats = 7
	}
	edges := gen.RMAT(cfg)
	stream := gen.MakeStream(cfg.N(), edges, cfg.Directed, 0.6, len(edges), seed)
	var rest []graph.Edge
	if len(stream.Batches) > 0 {
		rest = stream.Batches[0]
	}

	g := streamgraph.New(cfg.N(), cfg.Directed)
	g.InsertEdges(stream.Initial)
	prevSnap := g.Acquire()
	prev := prevSnap.Flatten()
	met := g.MirrorMetrics()

	var out []AblationDeltaFlatResult
	cursor := 0
	for _, size := range sizes {
		if cursor+size > len(rest) {
			fmt.Fprintf(w, "Ablation (deltaflat, %s): skipping batch=%d (only %d held-out edges left)\n",
				gname, size, len(rest)-cursor)
			continue
		}
		batch := rest[cursor : cursor+size]
		cursor += size
		snap, changed := g.InsertEdges(batch)

		copied0, walked0 := met.CopiedBytes.Value(), met.WalkedBytes.Value()
		res := AblationDeltaFlatResult{
			Graph: gname, BatchSize: size, ChangedSources: len(changed),
			TouchedFrac: float64(len(changed)) / float64(snap.NumVertices()),
		}
		for r := 0; r < repeats; r++ {
			t0 := time.Now()
			f := snap.MaterializeFlatFrom(prev, changed)
			d := time.Since(t0)
			if r == 0 {
				res.CopiedBytes = met.CopiedBytes.Value() - copied0
				res.WalkedBytes = met.WalkedBytes.Value() - walked0
				requireEqualMirror(gname, snap, f)
			}
			f.Release()
			if res.DeltaBuild == 0 || d < res.DeltaBuild {
				res.DeltaBuild = d
			}
		}
		for r := 0; r < repeats; r++ {
			t0 := time.Now()
			f := snap.MaterializeFlat()
			d := time.Since(t0)
			f.Release()
			if res.FullBuild == 0 || d < res.FullBuild {
				res.FullBuild = d
			}
		}
		if res.DeltaBuild > 0 {
			res.Speedup = float64(res.FullBuild) / float64(res.DeltaBuild)
		}
		if gets := met.SlabGets.Value(); gets > 0 {
			res.RecyclerHitRate = 1 - float64(met.SlabMisses.Value())/float64(gets)
		}

		// Advance the parent chain the way core does: cache the new
		// version's mirror via the delta path, retire the parent.
		snap.FlattenFrom(prev, changed)
		prevSnap.RetireFlat()
		prevSnap = snap
		prev = snap.BuiltFlat()

		fmt.Fprintf(w, "Ablation (deltaflat, %s, batch=%d): changed=%d (%.3f%% of V) delta=%v full=%v (%.2fx) copied=%s walked=%s recycler=%.0f%%\n",
			gname, size, res.ChangedSources, 100*res.TouchedFrac,
			res.DeltaBuild.Round(time.Microsecond), res.FullBuild.Round(time.Microsecond), res.Speedup,
			fmtBytes(res.CopiedBytes), fmtBytes(res.WalkedBytes), 100*res.RecyclerHitRate)
		out = append(out, res)
	}
	return out
}

// requireEqualMirror cross-checks a delta-built mirror against the
// snapshot's adjacency: every span must match the tree walk.
func requireEqualMirror(gname string, snap *streamgraph.Snapshot, f *streamgraph.Flat) {
	if f.NumEdges() != snap.NumEdges() || f.NumVertices() != snap.NumVertices() {
		panic(fmt.Sprintf("bench: deltaflat mirror shape diverged on %s: %d/%d arcs, %d/%d vertices",
			gname, f.NumEdges(), snap.NumEdges(), f.NumVertices(), snap.NumVertices()))
	}
	for v := 0; v < snap.NumVertices(); v++ {
		adj, wgt := f.OutSpan(graph.VertexID(v))
		i := 0
		ok := true
		snap.ForEachOut(graph.VertexID(v), func(d graph.VertexID, w graph.Weight) {
			if i >= len(adj) || adj[i] != d || wgt[i] != w {
				ok = false
			}
			i++
		})
		if !ok || i != len(adj) {
			panic(fmt.Sprintf("bench: deltaflat mirror diverged on %s at vertex %d", gname, v))
		}
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
