package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns options small enough for unit testing (seconds, not
// minutes) while still exercising every code path.
func tiny(buf *bytes.Buffer) Options {
	return Options{
		Queries:   4,
		Repeats:   1,
		K:         4,
		BatchSize: 2000,
		LoadFracs: []float64{0.6},
		Problems:  []string{"SSSP", "SSWP"},
		Graphs:    []string{"LJ-sim"},
		Out:       buf,
	}
}

func TestPrepare(t *testing.T) {
	s, err := Prepare("LJ-sim", 1, 0.5, 2000, 2, 1, []string{"BFS"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.G.Acquire().NumEdges() == 0 {
		t.Fatal("no edges loaded")
	}
	if got := s.Sys.Enabled(); len(got) != 1 || got[0] != "BFS" {
		t.Fatalf("enabled=%v", got)
	}
	if s.applied != 1 {
		t.Fatalf("applied=%d", s.applied)
	}
}

func TestPrepareUnknownGraph(t *testing.T) {
	if _, err := Prepare("nope", 1, 0.5, 100, 1, 0, nil, 1); err == nil {
		t.Fatal("unknown graph accepted")
	}
}

func TestSampleQueriesNonTrivial(t *testing.T) {
	s, err := Prepare("LJ-sim", 1, 0.6, 2000, 2, 0, []string{"BFS"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	qs := s.SampleQueries(10, 3)
	if len(qs) != 10 {
		t.Fatalf("sampled %d", len(qs))
	}
	snap := s.G.Acquire()
	seen := map[uint32]bool{}
	for _, q := range qs {
		if snap.Degree(q) <= 2 {
			t.Fatalf("trivial query source %d (deg %d)", q, snap.Degree(q))
		}
		if seen[q] {
			t.Fatalf("duplicate query source %d", q)
		}
		seen[q] = true
	}
}

func TestMeasureQueryAssertsAndMeasures(t *testing.T) {
	s, err := Prepare("LJ-sim", 1, 0.6, 2000, 4, 1, []string{"SSWP"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	u := s.SampleQueries(1, 5)[0]
	m := s.MeasureQuery("SSWP", u, 1)
	if m.FullSeconds <= 0 || m.DeltaSeconds <= 0 {
		t.Fatalf("timings %+v", m)
	}
	if m.ActRatio <= 0 || m.ActRatio > 1 {
		t.Fatalf("activation ratio %v out of (0,1]", m.ActRatio)
	}
}

func TestAggregateMeasurements(t *testing.T) {
	ms := []QueryMeasurement{
		{Speedup: 2, DeltaSeconds: 0.1, ActRatio: 0.5},
		{Speedup: 4, DeltaSeconds: 0.3, ActRatio: 0.7},
	}
	a := AggregateMeasurements(ms)
	if a.MeanSpeedup != 3 || a.N != 2 {
		t.Fatalf("agg %+v", a)
	}
	if a.StdevSpeedup != 1 {
		t.Fatalf("stdev %v", a.StdevSpeedup)
	}
	if AggregateMeasurements(nil).N != 0 {
		t.Fatal("empty aggregate")
	}
}

func TestSortedSpeedups(t *testing.T) {
	sp := SortedSpeedups([]QueryMeasurement{{Speedup: 3}, {Speedup: 1}, {Speedup: 2}})
	if sp[0] != 1 || sp[1] != 2 || sp[2] != 3 {
		t.Fatalf("sorted %v", sp)
	}
}

func TestTable1And2Render(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	if !strings.Contains(buf.String(), "SSWP") {
		t.Fatal("Table 1 missing rows")
	}
	buf.Reset()
	stats := Table2(&buf, 1)
	if len(stats) != 4 {
		t.Fatalf("Table 2 rows: %d", len(stats))
	}
	if !strings.Contains(buf.String(), "TW-sim") {
		t.Fatal("Table 2 output missing graphs")
	}
}

func TestTable3SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	cells := Table3(tiny(&buf))
	if len(cells) != 2 { // 1 graph × 1 frac × 2 problems
		t.Fatalf("cells=%d", len(cells))
	}
	for _, c := range cells {
		if c.Agg.N != 4 {
			t.Fatalf("cell %+v", c)
		}
		if c.Problem == "SSWP" && c.Agg.MeanSpeedup < 1 {
			t.Fatalf("SSWP speedup %v < 1 — Δ evaluation not helping", c.Agg.MeanSpeedup)
		}
	}
	if !strings.Contains(buf.String(), "LJ-60") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestTable4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	out := Table4(tiny(&buf))
	agg := out["SSWP"]["LJ-sim"]
	if agg.N == 0 {
		t.Fatal("no measurements")
	}
	// The paper's core observation: min-max problems have tiny R_act.
	if agg.MeanActRatio > 0.5 {
		t.Fatalf("SSWP activation ratio %v unexpectedly high", agg.MeanActRatio)
	}
}

func TestTable5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	rows := Table5(tiny(&buf), []int{1, 2})
	if len(rows) != 2 || rows[0].K != 1 || rows[1].K != 2 {
		t.Fatalf("rows %+v", rows)
	}
	if rows[0].Standing["SSSP"] <= 0 {
		t.Fatal("no standing time")
	}
}

func TestTable6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	o := tiny(&buf)
	out := Table6(o, []int{500, 1000})
	if len(out["LJ-sim"]) == 0 {
		t.Fatal("no LJ rows")
	}
	for _, per := range out["LJ-sim"] {
		for p, d := range per {
			if d <= 0 {
				t.Fatalf("problem %s: zero maintain time", p)
			}
		}
	}
}

func TestTable7and8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	o := tiny(&buf)
	o.Queries = 2
	results := Table7and8(o)
	// 2 graphs × 2 fracs × 3 problems
	if len(results) != 12 {
		t.Fatalf("results=%d", len(results))
	}
	for _, r := range results {
		if r.PlainRed == 0 {
			t.Fatalf("baseline recorded no reduce ops: %+v", r)
		}
		// TriRed may legitimately be zero: for min-max problems the Δ
		// bound is often fully converged, so the filter drops every
		// candidate (the paper's near-total activation elimination).
		if r.TriRed > r.PlainRed {
			t.Fatalf("filter increased reduce ops: %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "DD-SA-Tri") {
		t.Fatal("table text missing")
	}
}

func TestFigure11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	out := Figure11(tiny(&buf))
	sp := out["SSWP"]
	if len(sp) != 4 {
		t.Fatalf("series length %d", len(sp))
	}
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1] {
			t.Fatal("series not sorted")
		}
	}
}

func TestFigure12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	out := Figure12(tiny(&buf))
	if len(out["SSSP"]) == 0 {
		t.Fatal("no buckets")
	}
}
