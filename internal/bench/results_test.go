package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestReportJSONRoundTrip(t *testing.T) {
	o := Options{Queries: 4, K: 2, Seed: 7}
	r := NewReport(o, time.Unix(1000, 0).UTC())
	r.AddTable3([]Table3Cell{{
		Graph: "LJ-sim", Frac: 0.6, Problem: "SSWP",
		Agg: Aggregate{MeanSpeedup: 12.5, StdevSpeedup: 2.5, MeanDeltaSec: 0.01, N: 4},
	}})
	r.AddTable4(map[string]map[string]Aggregate{
		"SSWP": {"LJ-sim": {MeanActRatio: 0.001, StdActRatio: 0.0005}},
	})
	r.AddTable5([]Table5Row{{
		K:        4,
		Speedup:  map[string]float64{"SSSP": 1.7},
		Standing: map[string]time.Duration{"SSSP": 150 * time.Millisecond},
	}})
	r.DD = []DDResult{{Graph: "LJ-sim", Frac: 1.0, Problem: "SSSP", PlainRed: 100, TriRed: 40, Reduction: 2.5}}
	r.Fig11 = map[string][]float64{"SSWP": {1, 2, 3}}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Meta.Queries != 4 || back.Meta.K != 2 || back.Meta.Seed != 7 {
		t.Fatalf("meta %+v", back.Meta)
	}
	if len(back.Table3) != 1 || back.Table3[0].MeanSpeedup != 12.5 {
		t.Fatalf("table3 %+v", back.Table3)
	}
	if len(back.Table4) != 1 || back.Table4[0].MeanActRatio != 0.001 {
		t.Fatalf("table4 %+v", back.Table4)
	}
	if len(back.Table5) != 1 || back.Table5[0].StandingSec["SSSP"] != 0.15 {
		t.Fatalf("table5 %+v", back.Table5)
	}
	if len(back.DD) != 1 || back.DD[0].Reduction != 2.5 {
		t.Fatalf("dd %+v", back.DD)
	}
	if len(back.Fig11["SSWP"]) != 3 {
		t.Fatalf("fig11 %+v", back.Fig11)
	}
}

func TestNewReportAppliesDefaults(t *testing.T) {
	r := NewReport(Options{}, time.Unix(0, 0))
	if r.Meta.Queries == 0 || r.Meta.K == 0 || r.Meta.BatchSize == 0 {
		t.Fatalf("defaults not applied: %+v", r.Meta)
	}
}
