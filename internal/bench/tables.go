package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"tripoline/internal/dd"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/oracle"
	"tripoline/internal/props"
	"tripoline/internal/triangle"
	"tripoline/internal/xrand"
)

// Table1 prints the benchmark registry: the eight vertex-specific
// problems with their triangle operators — the code-level counterpart of
// the paper's Table 1 (vertex functions).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Benchmarks (vertex function = CAS-relax with the ops below)")
	fmt.Fprintf(w, "%-8s %-22s %-14s %-10s\n", "Bench.", "property", "⊕ (Combine)", "⪰ (order)")
	rows := [][4]string{
		{"BFS", "min #edges on path", "saturating +", "min is better"},
		{"SSSP", "min path weight", "saturating +", "min is better"},
		{"SSWP", "max min-edge (width)", "min", "max is better"},
		{"SSNP", "min max-edge (narrow)", "max", "min is better"},
		{"Viterbi", "max prob = 1/Πw", "× (saturating)", "max prob is better"},
		{"SSR", "reachability 0/1", "logical AND", "reached is better"},
		{"Radii", "16 × SSSP, max dist", "per-slot SSSP ⊕", "per-slot SSSP"},
		{"SSNSP", "BFS level + #paths", "+ (conditional)", "min level"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-22s %-14s %-10s\n", r[0], r[1], r[2], r[3])
	}
}

// Table2 prints the statistics of the four stand-in input graphs (the
// analogue of the paper's Table 2, with the substitution documented in
// DESIGN.md §5).
func Table2(w io.Writer, scale int) []graph.Stats {
	fmt.Fprintln(w, "Table 2: Statistics of Input Graphs (synthetic RMAT stand-ins)")
	var out []graph.Stats
	for _, cfg := range gen.Standard(scale) {
		g := graph.FromEdges(cfg.N(), gen.RMAT(cfg), cfg.Directed)
		st := g.Statistics(cfg.Name)
		out = append(out, st)
		fmt.Fprintln(w, st.String())
	}
	return out
}

// Table3Cell is one (graph-frac, problem) entry of Table 3.
type Table3Cell struct {
	Graph   string
	Frac    float64
	Problem string
	Agg     Aggregate
}

// Table3 reproduces the headline speedup table: Δ-based incremental
// evaluation over non-incremental evaluation, per problem × graph ×
// load fraction. Entries follow the paper's format:
// speedup [stddev, avg Δ-based seconds].
func Table3(o Options) []Table3Cell {
	o = o.withDefaults()
	w := o.Out
	fmt.Fprintln(w, "Table 3: Speedups of Δ-based Incremental Evaluation over Non-Incremental")
	fmt.Fprintf(w, "%-8s", "Graph")
	for _, p := range o.Problems {
		fmt.Fprintf(w, " %-22s", p)
	}
	fmt.Fprintln(w)
	var cells []Table3Cell
	for _, g := range o.Graphs {
		for _, frac := range o.LoadFracs {
			setup, err := Prepare(g, o.Scale, frac, o.BatchSize, o.K, o.BatchesPerPoint, o.Problems, o.Seed)
			if err != nil {
				panic(err)
			}
			qs := setup.SampleQueries(o.Queries, o.Seed+uint64(frac*100))
			fmt.Fprintf(w, "%s-%.0f", shortName(g), frac*100)
			for _, p := range o.Problems {
				ms := setup.MeasureQueries(p, qs, o.Repeats)
				agg := AggregateMeasurements(ms)
				cells = append(cells, Table3Cell{Graph: g, Frac: frac, Problem: p, Agg: agg})
				fmt.Fprintf(w, " %-22s", fmt.Sprintf("%.2f [%.2f, %.4f]",
					agg.MeanSpeedup, agg.StdevSpeedup, agg.MeanDeltaSec))
			}
			fmt.Fprintln(w)
		}
	}
	printTable3Averages(w, o, cells)
	return cells
}

func printTable3Averages(w io.Writer, o Options, cells []Table3Cell) {
	fmt.Fprintf(w, "%-8s", "avg.")
	for _, p := range o.Problems {
		var sum float64
		var n int
		for _, c := range cells {
			if c.Problem == p {
				sum += c.Agg.MeanSpeedup
				n++
			}
		}
		if n > 0 {
			fmt.Fprintf(w, " %-22s", fmt.Sprintf("%.2f", sum/float64(n)))
		}
	}
	fmt.Fprintln(w)
}

func shortName(g string) string { return strings.TrimSuffix(g, "-sim") }

// Table4 reproduces the activation-ratio table (R_act, Eq. 11) at the 60%
// load point.
func Table4(o Options) map[string]map[string]Aggregate {
	o = o.withDefaults()
	w := o.Out
	fmt.Fprintln(w, "Table 4: Vertex Activation Ratio of Δ-based over Non-Incremental (60% loaded)")
	fmt.Fprintf(w, "%-8s", "")
	for _, g := range o.Graphs {
		fmt.Fprintf(w, " %-20s", shortName(g)+"-60")
	}
	fmt.Fprintln(w)
	out := map[string]map[string]Aggregate{}
	setups := map[string]*Setup{}
	queries := map[string][]graph.VertexID{}
	for _, g := range o.Graphs {
		s, err := Prepare(g, o.Scale, 0.6, o.BatchSize, o.K, o.BatchesPerPoint, o.Problems, o.Seed)
		if err != nil {
			panic(err)
		}
		setups[g] = s
		queries[g] = s.SampleQueries(o.Queries, o.Seed+60)
	}
	for _, p := range o.Problems {
		fmt.Fprintf(w, "%-8s", p)
		out[p] = map[string]Aggregate{}
		for _, g := range o.Graphs {
			agg := AggregateMeasurements(setups[g].MeasureQueries(p, queries[g], 1))
			out[p][g] = agg
			fmt.Fprintf(w, " %-20s", fmt.Sprintf("%s [%s]",
				fmtRatio(agg.MeanActRatio), fmtRatio(agg.StdActRatio)))
		}
		fmt.Fprintln(w)
	}
	return out
}

// fmtRatio renders an activation ratio the way the paper does: percent
// for ordinary magnitudes, scientific notation for the near-zero ratios
// of the min-max problems.
func fmtRatio(r float64) string {
	if r == 0 {
		return "0"
	}
	if r < 0.0001 {
		return fmt.Sprintf("%.1E", r)
	}
	return fmt.Sprintf("%.1f%%", 100*r)
}

// Table5Row is one K configuration of Table 5.
type Table5Row struct {
	K        int
	Speedup  map[string]float64
	Standing map[string]time.Duration
}

// Table5 reproduces the standing-query-count sweep: user-query speedup
// and standing-query (re-)evaluation time as K varies, on the TW stand-in
// at 60% (the paper's Table 5).
func Table5(o Options, ks []int) []Table5Row {
	o = o.withDefaults()
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 16, 64}
	}
	w := o.Out
	fmt.Fprintln(w, "Table 5: Benefits and Costs of K Standing Queries (TW-sim, 60% loaded)")
	fmt.Fprintf(w, "%-8s", "#SQ")
	for _, k := range ks {
		fmt.Fprintf(w, " %-16s", fmt.Sprintf("K=%d", k))
	}
	fmt.Fprintln(w)
	rows := make([]Table5Row, len(ks))
	gname := "TW-sim"
	for i, k := range ks {
		rows[i] = Table5Row{K: k, Speedup: map[string]float64{}, Standing: map[string]time.Duration{}}
		setup, err := Prepare(gname, o.Scale, 0.6, o.BatchSize, k, 0, o.Problems, o.Seed)
		if err != nil {
			panic(err)
		}
		// One update batch so LastMaintain reflects incremental cost.
		setup.ApplyNextBatch()
		qs := setup.SampleQueries(o.Queries, o.Seed+5)
		for _, p := range o.Problems {
			agg := AggregateMeasurements(setup.MeasureQueries(p, qs, o.Repeats))
			rows[i].Speedup[p] = agg.MeanSpeedup
			d, err := setup.Sys.StandingMaintainTime(p)
			if err != nil {
				panic(err)
			}
			rows[i].Standing[p] = d
		}
	}
	for _, p := range o.Problems {
		fmt.Fprintf(w, "%-8s", p)
		for _, r := range rows {
			fmt.Fprintf(w, " %-16s", fmt.Sprintf("%.2f [%s]", r.Speedup[p], fmtSeconds(r.Standing[p])))
		}
		fmt.Fprintln(w)
	}
	return rows
}

// Table6 reproduces the update-batch-size sweep: standing query
// evaluation time per batch size (the paper's Table 6 used 1K–500K on
// LJ-60 and FR-60; sizes here scale with the stand-in graphs).
func Table6(o Options, sizes []int) map[string]map[int]map[string]time.Duration {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{1000, 2500, 5000, 10_000, 25_000}
	}
	w := o.Out
	fmt.Fprintln(w, "Table 6: Standing Query Evaluation Time (s) under Different Batch Sizes")
	out := map[string]map[int]map[string]time.Duration{}
	for _, gname := range []string{"LJ-sim", "FR-sim"} {
		out[gname] = map[int]map[string]time.Duration{}
		fmt.Fprintf(w, "%-8s %-8s", "Graph", "Bsize")
		for _, p := range o.Problems {
			fmt.Fprintf(w, " %-8s", p)
		}
		fmt.Fprintln(w)
		for _, bs := range sizes {
			setup, err := Prepare(gname, o.Scale, 0.6, bs, o.K, 0, o.Problems, o.Seed)
			if err != nil {
				panic(err)
			}
			if _, ok := setup.ApplyNextBatch(); !ok {
				continue
			}
			out[gname][bs] = map[string]time.Duration{}
			fmt.Fprintf(w, "%-8s %-8d", shortName(gname)+"-60", bs)
			for _, p := range o.Problems {
				d, err := setup.Sys.StandingMaintainTime(p)
				if err != nil {
					panic(err)
				}
				out[gname][bs][p] = d
				fmt.Fprintf(w, " %-8s", fmtSeconds(d))
			}
			fmt.Fprintln(w)
		}
	}
	return out
}

// DDResult is one (graph, frac, problem) entry of Tables 7 and 8.
type DDResult struct {
	Graph     string
	Frac      float64
	Problem   string
	PlainSec  float64
	TriSec    float64
	PlainRed  int64
	TriRed    int64
	Speedup   float64
	Reduction float64
}

// Table7and8 reproduces the Differential Dataflow integration experiment:
// DD with shared arrangements (DD-SA) versus DD-SA plus the triangle
// inequality filter (DD-SA-Tri), on BFS/SSSP/SSWP over the LJ and TW
// stand-ins at 60% and 100% load (Table 7: times; Table 8: reduce
// invocations at LJ-100).
func Table7and8(o Options) []DDResult {
	o = o.withDefaults()
	w := o.Out
	problems := []string{"BFS", "SSSP", "SSWP"}
	reg := props.Registry()
	var results []DDResult
	fmt.Fprintln(w, "Table 7: Differential Dataflow with Triangle Inequality Optimization")
	fmt.Fprintf(w, "%-10s %-10s %-28s %-28s %-28s\n", "Graph", "Method", "BFS", "SSSP", "SSWP")
	for _, gname := range []string{"LJ-sim", "TW-sim"} {
		cfg, _ := gen.ByName(gname, o.Scale)
		edges := gen.RMAT(cfg)
		for _, frac := range []float64{0.6, 1.0} {
			stream := gen.MakeStream(cfg.N(), edges, cfg.Directed, frac, o.BatchSize, o.Seed)
			arr := dd.Arrange(cfg.N(), stream.Initial, cfg.Directed)
			csr := graph.FromEdges(cfg.N(), stream.Initial, cfg.Directed)
			// Standing query for the bound: the top-degree root.
			root := gen.TopDegreeVertices(cfg.N(), stream.Initial, cfg.Directed, 1)[0]
			qs := sampleFromCSR(csr, o.Queries, o.Seed+uint64(frac*100))
			row := map[string]*DDResult{}
			for _, pname := range problems {
				p := reg[pname]
				standing := oracle.BestPath(csr, p, root)
				var toRoot []uint64
				if cfg.Directed {
					toRoot = oracle.BestPathTo(csr, p, root)
				} else {
					toRoot = standing
				}
				res := &DDResult{Graph: gname, Frac: frac, Problem: pname}
				for _, u := range qs {
					h := arr.Import()
					t0 := time.Now()
					plain := dd.Iterate(h, p, u, nil)
					res.PlainSec += time.Since(t0).Seconds()
					bound := triangle.DeltaInit(p, u, toRoot[u], standing)
					t1 := time.Now()
					tri := dd.Iterate(h, p, u, &dd.TriFilter{P: p, Bound: bound})
					res.TriSec += time.Since(t1).Seconds()
					res.PlainRed += plain.Stats.ReduceOps
					res.TriRed += tri.Stats.ReduceOps
					for v := range plain.Values {
						if plain.Values[v] != tri.Values[v] {
							panic(fmt.Sprintf("bench: DD tri diverged: %s %s u=%d v=%d",
								gname, pname, u, v))
						}
					}
				}
				n := float64(len(qs))
				res.PlainSec /= n
				res.TriSec /= n
				if res.TriSec > 0 {
					res.Speedup = res.PlainSec / res.TriSec
				}
				if res.TriRed > 0 {
					res.Reduction = float64(res.PlainRed) / float64(res.TriRed)
				}
				row[pname] = res
				results = append(results, *res)
			}
			label := fmt.Sprintf("%s-%.0f", shortName(gname), frac*100)
			fmt.Fprintf(w, "%-10s %-10s", label, "DD-SA")
			for _, pn := range problems {
				fmt.Fprintf(w, " %-28s", fmt.Sprintf("%.4fs", row[pn].PlainSec))
			}
			fmt.Fprintln(w)
			fmt.Fprintf(w, "%-10s %-10s", "", "DD-SA-Tri")
			for _, pn := range problems {
				fmt.Fprintf(w, " %-28s", fmt.Sprintf("%.4fs [%.2fx]", row[pn].TriSec, row[pn].Speedup))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\nTable 8: Reduction of reduce Operations (LJ-sim, 100% loaded)")
	fmt.Fprintf(w, "%-10s %-12s %-12s %-10s\n", "Problem", "DD-SA", "DD-SA-Tri", "Reduction")
	for _, r := range results {
		if r.Graph == "LJ-sim" && r.Frac == 1.0 {
			fmt.Fprintf(w, "%-10s %-12d %-12d %.2fx\n", r.Problem, r.PlainRed, r.TriRed, r.Reduction)
		}
	}
	return results
}

func sampleFromCSR(g *graph.CSR, count int, seed uint64) []graph.VertexID {
	rng := xrand.New(seed)
	seen := map[graph.VertexID]bool{}
	var out []graph.VertexID
	for attempts := 0; len(out) < count && attempts < 50*count+1000; attempts++ {
		v := graph.VertexID(rng.Intn(g.N))
		if seen[v] || g.Degree(v) <= 2 {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// Figure11 prints the sorted per-query speedup distribution on the LJ
// stand-in at 60% — the series of the paper's Figure 11, one line per
// problem, queries sorted ascending by speedup.
func Figure11(o Options) map[string][]float64 {
	o = o.withDefaults()
	w := o.Out
	setup, err := Prepare("LJ-sim", o.Scale, 0.6, o.BatchSize, o.K, o.BatchesPerPoint, o.Problems, o.Seed)
	if err != nil {
		panic(err)
	}
	qs := setup.SampleQueries(o.Queries, o.Seed+11)
	fmt.Fprintln(w, "Figure 11: Speedup Distributions of User Queries (LJ-sim-60, sorted ascending)")
	out := map[string][]float64{}
	for _, p := range o.Problems {
		queries := qs
		if p == "Radii" && len(queries) > 16 {
			queries = queries[:16] // the paper uses 16 queries for Radii
		}
		sp := SortedSpeedups(setup.MeasureQueries(p, queries, o.Repeats))
		out[p] = sp
		fmt.Fprintf(w, "%-8s", p)
		for _, s := range sp {
			fmt.Fprintf(w, " %.2f", s)
		}
		fmt.Fprintln(w)
	}
	return out
}

// Figure12Bucket is one property(u,r) bucket of Figure 12.
type Figure12Bucket struct {
	PropUR      uint64
	MeanSpeedup float64
	N           int
}

// Figure12 groups user-query speedups by property(u, r) — the standing
// query selection heuristic — reproducing the correlation plots of
// Figure 12. For each problem it prints propUR → mean speedup buckets.
func Figure12(o Options) map[string][]Figure12Bucket {
	o = o.withDefaults()
	w := o.Out
	setup, err := Prepare("LJ-sim", o.Scale, 0.6, o.BatchSize, o.K, o.BatchesPerPoint, o.Problems, o.Seed)
	if err != nil {
		panic(err)
	}
	qs := setup.SampleQueries(o.Queries, o.Seed+12)
	fmt.Fprintln(w, "Figure 12: Speedup vs property(u,r) (LJ-sim-60; bucket=propUR mean±n)")
	out := map[string][]Figure12Bucket{}
	for _, p := range o.Problems {
		ms := setup.MeasureQueries(p, qs, o.Repeats)
		buckets := map[uint64][]float64{}
		for _, m := range ms {
			buckets[bucketKey(p, m.PropUR)] = append(buckets[bucketKey(p, m.PropUR)], m.Speedup)
		}
		keys := make([]uint64, 0, len(buckets))
		for k := range buckets {
			keys = append(keys, k)
		}
		sortUint64(keys)
		fmt.Fprintf(w, "%-8s", p)
		for _, k := range keys {
			var sum float64
			for _, s := range buckets[k] {
				sum += s
			}
			b := Figure12Bucket{PropUR: k, MeanSpeedup: sum / float64(len(buckets[k])), N: len(buckets[k])}
			out[p] = append(out[p], b)
			fmt.Fprintf(w, " (%s→%.2fx n=%d)", propLabel(k), b.MeanSpeedup, b.N)
		}
		fmt.Fprintln(w)
	}
	return out
}

// bucketKey coarsens propUR so buckets have multiple members: wide-range
// problems (Viterbi's weight products) bucket by order of magnitude.
func bucketKey(problem string, propUR uint64) uint64 {
	if propUR == props.Unreached {
		return props.Unreached
	}
	if problem == "Viterbi" {
		k := uint64(1)
		for k < propUR {
			k *= 4
		}
		return k
	}
	return propUR
}

func propLabel(k uint64) string {
	if k == props.Unreached {
		return "∞"
	}
	return fmt.Sprintf("%d", k)
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
