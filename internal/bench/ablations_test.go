package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationBatchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test")
	}
	var buf bytes.Buffer
	res := AblationBatchMode(&buf, "LJ-sim", 1, 8, 2000, 5)
	if res.BatchedTime <= 0 || res.SeparateTime <= 0 {
		t.Fatalf("times %+v", res)
	}
	// The §4.5 claim: batch mode is cheaper than K separate evaluations.
	if res.BatchedSpeedup < 1 {
		t.Logf("warning: batch mode slower on this run: %.2fx", res.BatchedSpeedup)
	}
	if !strings.Contains(buf.String(), "batch mode") {
		t.Fatal("no output")
	}
}

func TestAblationSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test")
	}
	var buf bytes.Buffer
	res := AblationSelection(&buf, "LJ-sim", "SSSP", 1, 8, 6, 5)
	if res.BestSpeedup <= 0 || res.WorstSpeedup <= 0 {
		t.Fatalf("speedups %+v", res)
	}
	// Eq. 15's pick must not lose to the anti-heuristic on average.
	if res.BestSpeedup < res.WorstSpeedup*0.8 {
		t.Fatalf("best-root selection (%.2fx) much worse than worst-root (%.2fx)",
			res.BestSpeedup, res.WorstSpeedup)
	}
}

func TestAblationDualModel(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test")
	}
	var buf bytes.Buffer
	res := AblationDualModel(&buf, "LJ-sim", 1, 5)
	if res.PullTime <= 0 || res.TransposeTime <= 0 || res.ExtraArcs == 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestAblationDualModelRejectsUndirected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undirected graph accepted")
		}
	}()
	AblationDualModel(nil, "OR-sim", 1, 1)
}

func TestAblationFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test")
	}
	var buf bytes.Buffer
	res := AblationFlat(&buf, "LJ-sim", "SSSP", 1, 8, 6, 2000, 5)
	if res.FlattenBuild <= 0 || res.FlatStanding <= 0 || res.TreeStanding <= 0 {
		t.Fatalf("times %+v", res)
	}
	if res.FlatDeltaSec <= 0 || res.TreeDeltaSec <= 0 || res.FlatFullSec <= 0 {
		t.Fatalf("query seconds %+v", res)
	}
	// The point of the mirror: the specialized kernels must not lose to
	// the C-tree walk on from-scratch evaluations.
	if res.FullSpeedup < 1 {
		t.Logf("warning: flat path slower on this run: %.2fx", res.FullSpeedup)
	}
	if !strings.Contains(buf.String(), "Ablation (flat") {
		t.Fatal("no output")
	}
}
