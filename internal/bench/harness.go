// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6) on the synthetic stand-in
// graphs. Each experiment follows the paper's methodology (§6.1):
//
//   - load a preset fraction (50/60/70%) of a shuffled edge stream;
//   - stream the remaining edges in batches, re-stabilizing the standing
//     queries incrementally after each batch;
//   - evaluate a sample of non-trivial user queries (source degree > 2)
//     both Δ-based (incremental) and from scratch, repeatedly, and report
//     averaged speedups, times, and activation ratios.
//
// The package is consumed by cmd/tripoline-bench (full sweeps, flags) and
// by the top-level bench_test.go (one testing.B benchmark per table and
// figure at reduced defaults).
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"tripoline/internal/core"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/streamgraph"
	"tripoline/internal/xrand"
)

// Options configures an experiment sweep. Zero values select defaults
// sized to finish in minutes on a laptop; the paper-scale methodology
// (256 queries × 3 repeats, 5 batches per load point) is reached by
// raising Queries/Repeats/BatchesPerPoint and Scale.
type Options struct {
	Scale           int       // graph scale (1 = default laptop scale)
	Queries         int       // user queries sampled per configuration
	Repeats         int       // evaluations averaged per query
	K               int       // standing queries per problem
	BatchSize       int       // update batch size (edges)
	BatchesPerPoint int       // update batches applied per load point
	LoadFracs       []float64 // graph load points
	Problems        []string  // problem subset
	Graphs          []string  // graph subset (standard names)
	Seed            uint64
	Out             io.Writer // table destination (nil = io.Discard)
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Queries == 0 {
		o.Queries = 24
	}
	if o.Repeats == 0 {
		o.Repeats = 1
	}
	if o.K == 0 {
		o.K = core.DefaultK
	}
	if o.BatchSize == 0 {
		o.BatchSize = 10_000
	}
	if o.BatchesPerPoint == 0 {
		o.BatchesPerPoint = 1
	}
	if len(o.LoadFracs) == 0 {
		o.LoadFracs = []float64{0.5, 0.6, 0.7}
	}
	if len(o.Problems) == 0 {
		o.Problems = []string{"SSSP", "SSWP", "Viterbi", "BFS", "SSNP", "SSR", "Radii", "SSNSP"}
	}
	if len(o.Graphs) == 0 {
		o.Graphs = []string{"OR-sim", "FR-sim", "LJ-sim", "TW-sim"}
	}
	if o.Seed == 0 {
		o.Seed = 0x7121
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Setup is one prepared streaming-graph experiment point: the system has
// loaded the initial fraction, enabled the problems, and applied
// BatchesPerPoint update batches.
type Setup struct {
	Name    string
	Cfg     gen.Config
	Sys     *core.System
	G       *streamgraph.Graph
	Stream  gen.Stream
	applied int
}

// Prepare builds the named standard graph at loadFrac, enables the given
// problems with K standing queries, and applies batches update batches.
func Prepare(name string, scale int, loadFrac float64, batchSize, k, batches int, problems []string, seed uint64) (*Setup, error) {
	cfg, ok := gen.ByName(name, scale)
	if !ok {
		return nil, fmt.Errorf("bench: unknown graph %q", name)
	}
	return prepareStream(name, cfg, gen.RMAT(cfg), loadFrac, batchSize, k, batches, problems, seed)
}

// PrepareEdges is Prepare over an externally supplied edge list (e.g. a
// weighted edge-list file), following the same load/stream methodology.
func PrepareEdges(name string, n int, edges []graph.Edge, directed bool, loadFrac float64, batchSize, k, batches int, problems []string, seed uint64) (*Setup, error) {
	cfg := gen.Config{Name: name, Directed: directed}
	for 1<<cfg.LogN < n {
		cfg.LogN++
	}
	stream := gen.MakeStream(n, edges, directed, loadFrac, batchSize, seed)
	g := streamgraph.New(n, directed)
	g.InsertEdges(stream.Initial)
	return finishSetup(name, cfg, g, stream, k, batches, problems)
}

func prepareStream(name string, cfg gen.Config, edges []graph.Edge, loadFrac float64, batchSize, k, batches int, problems []string, seed uint64) (*Setup, error) {
	stream := gen.MakeStream(cfg.N(), edges, cfg.Directed, loadFrac, batchSize, seed)
	g := streamgraph.New(cfg.N(), cfg.Directed)
	g.InsertEdges(stream.Initial)
	return finishSetup(name, cfg, g, stream, k, batches, problems)
}

func finishSetup(name string, cfg gen.Config, g *streamgraph.Graph, stream gen.Stream, k, batches int, problems []string) (*Setup, error) {
	sys := core.NewSystem(g, k)
	for _, p := range problems {
		if err := sys.Enable(p); err != nil {
			return nil, err
		}
	}
	s := &Setup{Name: name, Cfg: cfg, Sys: sys, G: g, Stream: stream}
	for i := 0; i < batches && i < len(stream.Batches); i++ {
		sys.ApplyBatch(stream.Batches[i])
		s.applied++
	}
	return s, nil
}

// ApplyNextBatch streams one more update batch; it reports false when the
// stream is exhausted.
func (s *Setup) ApplyNextBatch() (core.BatchReport, bool) {
	if s.applied >= len(s.Stream.Batches) {
		return core.BatchReport{}, false
	}
	rep := s.Sys.ApplyBatch(s.Stream.Batches[s.applied])
	s.applied++
	return rep, true
}

// SampleQueries draws count distinct non-trivial user query sources
// (out-degree > 2, per §6.1) from the current snapshot.
func (s *Setup) SampleQueries(count int, seed uint64) []graph.VertexID {
	snap := s.G.Acquire()
	rng := xrand.New(seed)
	seen := map[graph.VertexID]bool{}
	out := make([]graph.VertexID, 0, count)
	for attempts := 0; len(out) < count && attempts < 50*count+1000; attempts++ {
		v := graph.VertexID(rng.Intn(snap.NumVertices()))
		if seen[v] || snap.Degree(v) <= 2 {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// QueryMeasurement is the measured outcome of one user query.
type QueryMeasurement struct {
	Source       graph.VertexID
	Speedup      float64 // full time / Δ-based time
	DeltaSeconds float64
	FullSeconds  float64
	// ActRatio is R_act (Eq. 11): Δ-based activations over full
	// activations. For SSNSP it is the counting-round ratio, matching the
	// paper's Table 4 note.
	ActRatio float64
	PropUR   uint64 // property(u, r*) of the chosen standing query
}

// MeasureQuery evaluates one user query both ways, repeats times each,
// and returns averaged timings. Correctness is asserted: any divergence
// between the Δ-based and full values panics (the harness is also a
// continuous correctness check, per §4.3's experimental confirmation).
func (s *Setup) MeasureQuery(problem string, u graph.VertexID, repeats int) QueryMeasurement {
	var m QueryMeasurement
	m.Source = u
	var deltaActs, fullActs int64
	for rep := 0; rep < repeats; rep++ {
		full, err := s.Sys.QueryFull(problem, u)
		if err != nil {
			panic(err)
		}
		inc, err := s.Sys.Query(problem, u)
		if err != nil {
			panic(err)
		}
		for i := range full.Values {
			if full.Values[i] != inc.Values[i] {
				panic(fmt.Sprintf("bench: %s(%d) diverged at %d: Δ=%d full=%d",
					problem, u, i, inc.Values[i], full.Values[i]))
			}
		}
		m.DeltaSeconds += inc.Elapsed.Seconds()
		m.FullSeconds += full.Elapsed.Seconds()
		if problem == "SSNSP" {
			deltaActs, fullActs = inc.CountStats.Activations, full.CountStats.Activations
		} else {
			deltaActs, fullActs = inc.Stats.Activations, full.Stats.Activations
		}
		m.PropUR = inc.PropUR
	}
	m.DeltaSeconds /= float64(repeats)
	m.FullSeconds /= float64(repeats)
	if m.DeltaSeconds > 0 {
		m.Speedup = m.FullSeconds / m.DeltaSeconds
	}
	if fullActs > 0 {
		m.ActRatio = float64(deltaActs) / float64(fullActs)
	}
	return m
}

// MeasureQueries measures a batch of user queries.
func (s *Setup) MeasureQueries(problem string, qs []graph.VertexID, repeats int) []QueryMeasurement {
	out := make([]QueryMeasurement, len(qs))
	for i, u := range qs {
		out[i] = s.MeasureQuery(problem, u, repeats)
	}
	return out
}

// Aggregate summarizes a measurement batch.
type Aggregate struct {
	MeanSpeedup  float64
	StdevSpeedup float64
	MeanDeltaSec float64
	MeanActRatio float64
	StdActRatio  float64
	N            int
}

// Aggregate reduces measurements to the entry format of Tables 3 and 4:
// average speedup [stddev, average Δ-based seconds] and the activation
// ratio statistics.
func AggregateMeasurements(ms []QueryMeasurement) Aggregate {
	var a Aggregate
	a.N = len(ms)
	if a.N == 0 {
		return a
	}
	for _, m := range ms {
		a.MeanSpeedup += m.Speedup
		a.MeanDeltaSec += m.DeltaSeconds
		a.MeanActRatio += m.ActRatio
	}
	n := float64(a.N)
	a.MeanSpeedup /= n
	a.MeanDeltaSec /= n
	a.MeanActRatio /= n
	for _, m := range ms {
		a.StdevSpeedup += (m.Speedup - a.MeanSpeedup) * (m.Speedup - a.MeanSpeedup)
		a.StdActRatio += (m.ActRatio - a.MeanActRatio) * (m.ActRatio - a.MeanActRatio)
	}
	a.StdevSpeedup = math.Sqrt(a.StdevSpeedup / n)
	a.StdActRatio = math.Sqrt(a.StdActRatio / n)
	return a
}

// SortedSpeedups returns the per-query speedups in ascending order — the
// series plotted in Figure 11.
func SortedSpeedups(ms []QueryMeasurement) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.Speedup
	}
	sort.Float64s(out)
	return out
}

// fmtSeconds renders a duration in the paper's seconds format.
func fmtSeconds(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}
