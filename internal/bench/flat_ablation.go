package bench

import (
	"fmt"
	"io"
	"time"

	"tripoline/internal/core"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/streamgraph"
	"tripoline/internal/xrand"
)

// AblationFlatResult compares the flat-adjacency fast path against the
// C-tree walk, end-to-end through the system: one standing-maintenance
// batch plus a Table-3-shaped user-query workload, run twice on
// identically built systems that differ only in SetFlatten.
type AblationFlatResult struct {
	Graph   string
	Problem string
	K       int
	Queries int
	// FlattenBuild is the one-time cost of materializing the mirror for
	// the loaded snapshot — the price a new snapshot version pays.
	FlattenBuild time.Duration
	// Standing maintenance time for one update batch, each mode.
	TreeStanding time.Duration
	FlatStanding time.Duration
	// Summed user-query evaluation seconds over all sampled sources.
	TreeDeltaSec float64 // Δ-based (incremental) queries
	FlatDeltaSec float64
	TreeFullSec  float64 // from-scratch queries
	FlatFullSec  float64
	// Speedups (tree time / flat time; >1 means flattening won).
	StandingSpeedup float64
	DeltaSpeedup    float64
	FullSpeedup     float64
}

// AblationFlat measures the flat-mirror fast path on the named graph at
// 60% load: it builds two systems over identical streams — one with
// SetFlatten(false), one with the default mirror — prices the one-time
// Flatten, applies one update batch to each (standing maintenance), and
// evaluates the same sampled user queries both Δ-based and from scratch
// in both modes. Every query's values are asserted equal across modes,
// so the ablation doubles as the fallback-path correctness check.
func AblationFlat(w io.Writer, gname, problem string, scale, k, queries, batchSize int, seed uint64) AblationFlatResult {
	cfg, ok := gen.ByName(gname, scale)
	if !ok {
		panic("bench: unknown graph " + gname)
	}
	edges := gen.RMAT(cfg)
	stream := gen.MakeStream(cfg.N(), edges, cfg.Directed, 0.6, batchSize, seed)

	res := AblationFlatResult{Graph: gname, Problem: problem, K: k, Queries: queries}

	build := func(flatten bool) *core.System {
		g := streamgraph.New(cfg.N(), cfg.Directed)
		g.InsertEdges(stream.Initial)
		sys := core.NewSystem(g, k)
		sys.SetFlatten(flatten)
		if flatten {
			// Price the one-time mirror build before Enable reuses it.
			t0 := time.Now()
			g.Acquire().Flatten()
			res.FlattenBuild = time.Since(t0)
		}
		if err := sys.Enable(problem); err != nil {
			panic(err)
		}
		return sys
	}
	flat := build(true)
	tree := build(false)

	res.FlatStanding = flat.ApplyBatch(stream.Batches[0]).StandingElapsed
	res.TreeStanding = tree.ApplyBatch(stream.Batches[0]).StandingElapsed

	// Sample non-trivial sources (out-degree > 2, per §6.1) from the
	// post-batch snapshot — identical in both systems by construction.
	snap := flat.G.Acquire()
	rng := xrand.New(seed + 77)
	seen := map[graph.VertexID]bool{}
	var sources []graph.VertexID
	for attempts := 0; len(sources) < queries && attempts < 50*queries+1000; attempts++ {
		v := graph.VertexID(rng.Intn(snap.NumVertices()))
		if seen[v] || snap.Degree(v) <= 2 {
			continue
		}
		seen[v] = true
		sources = append(sources, v)
	}

	for _, u := range sources {
		ff, err := flat.QueryFull(problem, u)
		if err != nil {
			panic(err)
		}
		fd, err := flat.Query(problem, u)
		if err != nil {
			panic(err)
		}
		tf, err := tree.QueryFull(problem, u)
		if err != nil {
			panic(err)
		}
		td, err := tree.Query(problem, u)
		if err != nil {
			panic(err)
		}
		for i := range ff.Values {
			if ff.Values[i] != tf.Values[i] || fd.Values[i] != td.Values[i] {
				panic(fmt.Sprintf("ablation: flat and tree diverged at %s(%d) value %d", problem, u, i))
			}
		}
		res.FlatFullSec += ff.Elapsed.Seconds()
		res.FlatDeltaSec += fd.Elapsed.Seconds()
		res.TreeFullSec += tf.Elapsed.Seconds()
		res.TreeDeltaSec += td.Elapsed.Seconds()
	}

	if res.FlatStanding > 0 {
		res.StandingSpeedup = float64(res.TreeStanding) / float64(res.FlatStanding)
	}
	if res.FlatDeltaSec > 0 {
		res.DeltaSpeedup = res.TreeDeltaSec / res.FlatDeltaSec
	}
	if res.FlatFullSec > 0 {
		res.FullSpeedup = res.TreeFullSec / res.FlatFullSec
	}

	fmt.Fprintf(w, "Ablation (flat, %s on %s, K=%d, %d queries): build=%v standing %v→%v (%.2fx) Δ-queries %.3fs→%.3fs (%.2fx) full %.3fs→%.3fs (%.2fx)\n",
		problem, gname, k, len(sources),
		res.FlattenBuild.Round(time.Microsecond),
		res.TreeStanding.Round(time.Microsecond), res.FlatStanding.Round(time.Microsecond), res.StandingSpeedup,
		res.TreeDeltaSec, res.FlatDeltaSec, res.DeltaSpeedup,
		res.TreeFullSec, res.FlatFullSec, res.FullSpeedup)
	return res
}
