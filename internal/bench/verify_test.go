package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestVerifyPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("verify is a heavier end-to-end sweep")
	}
	var buf bytes.Buffer
	if failures := Verify(&buf, 1, 3, 7); failures != 0 {
		t.Fatalf("verify reported %d failures:\n%s", failures, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "VERIFY PASS") {
		t.Fatalf("missing pass line:\n%s", out)
	}
	if !strings.Contains(out, "+del") {
		t.Fatalf("deletion phase missing:\n%s", out)
	}
	if strings.Count(out, "PASS") < 24 { // 2 graphs × 2 phases × 6 problems
		t.Fatalf("too few checks:\n%s", out)
	}
}
