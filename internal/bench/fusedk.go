package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tripoline/internal/engine"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/props"
	"tripoline/internal/standing"
	"tripoline/internal/streamgraph"
)

// AblationFusedKCell is one width point of the fused-kernel ablation:
// standing-refresh throughput with the width-K SoA kernels on versus the
// legacy interleaved kernel generation, on the same logical edge stream.
type AblationFusedKCell struct {
	Graph        string
	LogN         int
	K            int
	Batches      int
	EdgesApplied int64
	// Mean wall time per standing refresh (one Manager.Update call).
	FusedRefresh  time.Duration
	LegacyRefresh time.Duration
	// Refresh nanoseconds per applied update edge.
	FusedNsPerEdge  float64
	LegacyNsPerEdge float64
	Speedup         float64
	// Fused-kernel work counters accumulated over the refreshes.
	Hoists      int64
	GateSkips   int64
	BlockSweeps int64
	// Verified is true when the two kernel generations produced
	// bit-identical standing states after every refresh AND bit-identical
	// full evaluations for every registered problem on the final graph.
	Verified bool
}

// maxFusedKBatches bounds the refresh count per mode so the sweep stays
// in minutes at LogN=16; both generations replay the identical prefix.
const maxFusedKBatches = 24

// fusedKRepeats is how many times each mode replays the full batch
// sequence per width. The replay is deterministic, so repeats only
// differ by machine noise; the cell reports the minimum total — the
// standard least-noise estimator on a shared machine.
const fusedKRepeats = 3

// AblationFusedK sweeps the standing-query width K over an RMAT graph
// with 2^logn vertices: for each width it maintains K standing SSSP
// queries through a stream of update batches twice — once with the
// fused width-K SoA kernels, once with the legacy interleaved kernel —
// and reports per-refresh and per-edge throughput plus the speedup.
// Each mode replays the sequence fusedKRepeats times (interleaved) and
// the fastest replay is reported. Results are cross-verified bit for bit (the relaxation fixpoint is
// unique, so any divergence is a kernel bug, not noise); a verification
// failure panics rather than reporting a tainted speedup.
func AblationFusedK(w io.Writer, logn, batchSize int, widths []int, seed uint64) []AblationFusedKCell {
	cfg := gen.Config{Name: fmt.Sprintf("RMAT-%d", logn), LogN: logn, AvgDegree: 16, Seed: seed}
	edges := gen.RMAT(cfg)
	stream := gen.MakeStream(cfg.N(), edges, cfg.Directed, 0.6, batchSize, seed)
	batches := stream.Batches
	if len(batches) > maxFusedKBatches {
		batches = batches[:maxFusedKBatches]
	}

	type modeResult struct {
		mgr   *standing.Manager
		flat  *streamgraph.Flat
		total time.Duration
		stats engine.Stats
		edges int64
	}
	// Standing maintenance runs over the delta-patched flat mirror, the
	// way core drives it — the mirror is the ArcView the fused kernels'
	// cache-blocked dense sweeps need. Mirror maintenance itself is
	// outside the timed region (the deltaflat ablation measures that);
	// both kernel generations see the identical view sequence.
	runMode := func(k int, fused bool) modeResult {
		prev := engine.SetFusedKernels(fused)
		defer engine.SetFusedKernels(prev)
		g := streamgraph.New(cfg.N(), cfg.Directed)
		g.InsertEdges(stream.Initial)
		snap := g.Acquire()
		flat := snap.Flatten()
		roots := topRoots(snap, k)
		mgr := standing.New(props.SSSP{}, flat, roots, cfg.Directed)
		var res modeResult
		for _, b := range batches {
			next, changed := g.InsertEdges(b)
			nextFlat := next.FlattenFrom(flat, changed)
			snap.RetireFlat()
			snap, flat = next, nextFlat
			t0 := time.Now()
			s := mgr.Update(flat, changed)
			res.total += time.Since(t0)
			res.stats.Add(s)
			res.edges += int64(len(b))
		}
		res.mgr = mgr
		res.flat = flat
		return res
	}

	var cells []AblationFusedKCell
	for _, k := range widths {
		// Interleave the repeats (fused, legacy, fused, legacy, ...) so
		// slow drift in background load hits both modes alike, and keep
		// each mode's fastest replay.
		fused := runMode(k, true)
		legacy := runMode(k, false)
		for r := 1; r < fusedKRepeats; r++ {
			if res := runMode(k, true); res.total < fused.total {
				fused = res
			}
			if res := runMode(k, false); res.total < legacy.total {
				legacy = res
			}
		}

		// Standing states after the full refresh sequence must agree on
		// every slot of every vertex.
		for slot := 0; slot < k; slot++ {
			fc, lc := fused.mgr.StandingColumn(slot), legacy.mgr.StandingColumn(slot)
			for v := range fc {
				if fc[v] != lc[v] {
					panic(fmt.Sprintf("bench: fusedK K=%d slot %d vertex %d: fused %#x legacy %#x",
						k, slot, v, fc[v], lc[v]))
				}
			}
		}
		// And a from-scratch width-K evaluation of every registered
		// problem on the final graph must agree between generations.
		roots := fused.mgr.Roots
		for name, p := range props.Registry() {
			fs, _ := engine.Run(fused.flat, p, roots)
			prevTog := engine.SetFusedKernels(false)
			ls, _ := engine.Run(fused.flat, p, roots)
			engine.SetFusedKernels(prevTog)
			for v := 0; v < cfg.N(); v++ {
				for j := 0; j < k; j++ {
					if fs.Value(graph.VertexID(v), j) != ls.Value(graph.VertexID(v), j) {
						panic(fmt.Sprintf("bench: fusedK %s K=%d value(%d,%d) diverges", name, k, v, j))
					}
				}
			}
		}

		cell := AblationFusedKCell{
			Graph: cfg.Name, LogN: logn, K: k,
			Batches: len(batches), EdgesApplied: fused.edges,
			FusedRefresh:  fused.total / time.Duration(len(batches)),
			LegacyRefresh: legacy.total / time.Duration(len(batches)),
			Hoists:        fused.stats.Hoists,
			GateSkips:     fused.stats.GateSkips,
			BlockSweeps:   fused.stats.BlockSweeps,
			Verified:      true,
		}
		if fused.edges > 0 {
			cell.FusedNsPerEdge = float64(fused.total.Nanoseconds()) / float64(fused.edges)
			cell.LegacyNsPerEdge = float64(legacy.total.Nanoseconds()) / float64(legacy.edges)
		}
		if fused.total > 0 {
			cell.Speedup = float64(legacy.total) / float64(fused.total)
		}
		cells = append(cells, cell)
		fmt.Fprintf(w, "Ablation (fusedK, %s, K=%d): fused=%v legacy=%v per refresh (%.1f vs %.1f ns/edge) → %.2fx  [hoists=%d gates=%d sweeps=%d]\n",
			cfg.Name, k,
			cell.FusedRefresh.Round(time.Microsecond), cell.LegacyRefresh.Round(time.Microsecond),
			cell.FusedNsPerEdge, cell.LegacyNsPerEdge, cell.Speedup,
			cell.Hoists, cell.GateSkips, cell.BlockSweeps)
	}
	return cells
}

// kernelBenchFile mirrors the github-action-benchmark data.js shape
// (window.BENCHMARK_DATA), so the sweep can feed the same dashboards
// without a converter.
type kernelBenchFile struct {
	LastUpdate int64                         `json:"lastUpdate"`
	RepoURL    string                        `json:"repoUrl"`
	Entries    map[string][]kernelBenchEntry `json:"entries"`
}

type kernelBenchEntry struct {
	Commit  kernelBenchCommit `json:"commit"`
	Date    int64             `json:"date"`
	Tool    string            `json:"tool"`
	Benches []kernelBench     `json:"benches"`
}

type kernelBenchCommit struct {
	ID        string `json:"id"`
	Message   string `json:"message"`
	Timestamp string `json:"timestamp"`
}

type kernelBench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// WriteKernelBenchJSON serializes the fused-kernel sweep as one
// dashboard entry with three series per width: fused ns/edge, legacy
// ns/edge, and ns per standing refresh.
func WriteKernelBenchJSON(w io.Writer, cells []AblationFusedKCell, commit string, ts time.Time) error {
	entry := kernelBenchEntry{
		Commit: kernelBenchCommit{ID: commit, Message: "fused width-K kernel sweep", Timestamp: ts.UTC().Format(time.RFC3339)},
		Date:   ts.UnixMilli(),
		Tool:   "go",
	}
	for _, c := range cells {
		base := fmt.Sprintf("fusedK/%s/K=%d", c.Graph, c.K)
		extra := fmt.Sprintf("speedup=%.2fx verified=%v batches=%d", c.Speedup, c.Verified, c.Batches)
		entry.Benches = append(entry.Benches,
			kernelBench{Name: base + "/fused_ns_per_edge", Value: c.FusedNsPerEdge, Unit: "ns/edge", Extra: extra},
			kernelBench{Name: base + "/legacy_ns_per_edge", Value: c.LegacyNsPerEdge, Unit: "ns/edge"},
			kernelBench{Name: base + "/fused_ns_per_refresh", Value: float64(c.FusedRefresh.Nanoseconds()), Unit: "ns/refresh"},
		)
	}
	file := kernelBenchFile{
		LastUpdate: ts.UnixMilli(),
		RepoURL:    "",
		Entries:    map[string][]kernelBenchEntry{"Kernels": {entry}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}
