package oracle

import (
	"math"

	"tripoline/internal/graph"
)

// PageRank mirrors props.PageRank's scheme — damped power iteration with
// uniform dangling-mass redistribution, started from the uniform
// distribution and stopped when the per-iteration L1 change drops below
// tol (or at maxIters) — in a strictly sequential, deterministic form.
// The parallel implementation accumulates contributions with atomic
// float adds, so its rounding depends on scheduling; comparisons against
// this oracle must allow a small per-vertex tolerance (the L1 stopping
// rule bounds the distance to the fixpoint by tol·d/(1−d), and the
// 0.85^maxIters contraction bounds the early-cap case, so 1e-6 is
// comfortable for both at the checker's graph sizes).
func PageRank(g *graph.CSR, damping float64, maxIters int, tol float64) []float64 {
	n := g.N
	if n == 0 {
		return nil
	}
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1.0 / float64(n)
	}
	contrib := make([]float64, n)
	for iter := 0; iter < maxIters; iter++ {
		for i := range contrib {
			contrib[i] = 0
		}
		dangling := 0.0
		for v := 0; v < n; v++ {
			deg := g.Off[v+1] - g.Off[v]
			if deg == 0 {
				dangling += ranks[v]
				continue
			}
			share := ranks[v] / float64(deg)
			g.ForEachOut(graph.VertexID(v), func(d graph.VertexID, _ graph.Weight) {
				contrib[d] += share
			})
		}
		base := (1 - damping) / float64(n)
		dshare := dangling / float64(n)
		delta := 0.0
		for v := 0; v < n; v++ {
			nv := base + damping*(contrib[v]+dshare)
			delta += math.Abs(nv - ranks[v])
			ranks[v] = nv
		}
		if delta < tol {
			break
		}
	}
	return ranks
}
