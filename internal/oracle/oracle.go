// Package oracle provides slow-but-obviously-correct sequential reference
// implementations of the graph problems. They share no code with the
// parallel engine (dense Bellman–Ford-style edge scans instead of
// frontier-based relaxation), making them an independent path for the
// test suite to validate the engine, the Δ-based evaluation, and the DD
// integration against.
package oracle

import (
	"tripoline/internal/engine"
	"tripoline/internal/graph"
)

// BestPath computes property(src, x) for every x by label-correcting
// iteration over all edges until a fixpoint. It is correct for every
// monotonic best-path problem in package props (BFS, SSSP, SSWP, SSNP,
// Viterbi, SSR).
func BestPath(g *graph.CSR, p engine.Problem, src graph.VertexID) []uint64 {
	vals := make([]uint64, g.N)
	for i := range vals {
		vals[i] = p.InitValue()
	}
	vals[src] = p.SourceValue()
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.N; v++ {
			sv := vals[v]
			g.ForEachOut(graph.VertexID(v), func(d graph.VertexID, w graph.Weight) {
				cand, ok := p.Relax(sv, w)
				if ok && p.Better(cand, vals[d]) {
					vals[d] = cand
					changed = true
				}
			})
		}
	}
	return vals
}

// BestPathTo computes property(x, dst) for every x (the reversed query
// q⁻¹) by running BestPath on the transposed graph.
func BestPathTo(g *graph.CSR, p engine.Problem, dst graph.VertexID) []uint64 {
	return BestPath(g.Transpose(), p, dst)
}

// CountShortestPaths returns BFS levels and the number of distinct
// shortest (fewest-edge) paths from src, computed by sequential
// level-order dynamic programming.
func CountShortestPaths(g *graph.CSR, src graph.VertexID) (levels, counts []uint64) {
	const unreached = ^uint64(0)
	levels = make([]uint64, g.N)
	counts = make([]uint64, g.N)
	for i := range levels {
		levels[i] = unreached
	}
	levels[src] = 0
	counts[src] = 1
	frontier := []graph.VertexID{src}
	for level := uint64(0); len(frontier) > 0; level++ {
		var next []graph.VertexID
		for _, u := range frontier {
			g.ForEachOut(u, func(d graph.VertexID, _ graph.Weight) {
				if levels[d] == unreached {
					levels[d] = level + 1
					next = append(next, d)
				}
			})
		}
		frontier = next
	}
	// Accumulate counts in level order.
	order := make([][]graph.VertexID, 0)
	for v := 0; v < g.N; v++ {
		if levels[v] == unreached {
			continue
		}
		l := int(levels[v])
		for len(order) <= l {
			order = append(order, nil)
		}
		order[l] = append(order[l], graph.VertexID(v))
	}
	for _, layer := range order {
		for _, u := range layer {
			g.ForEachOut(u, func(d graph.VertexID, _ graph.Weight) {
				if levels[d] == levels[u]+1 {
					counts[d] += counts[u]
				}
			})
		}
	}
	return levels, counts
}

// Components returns per-vertex component labels via union-find over the
// stored arcs (for undirected graphs these are the connected components;
// labels are the minimum vertex ID in each component).
func Components(g *graph.CSR) []uint64 {
	parent := make([]int, g.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := 0; v < g.N; v++ {
		g.ForEachOut(graph.VertexID(v), func(d graph.VertexID, _ graph.Weight) {
			union(v, int(d))
		})
	}
	labels := make([]uint64, g.N)
	// With union-by-min the root is already the minimum member.
	for v := range labels {
		labels[v] = uint64(find(v))
	}
	return labels
}
