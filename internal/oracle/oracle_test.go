package oracle

import (
	"testing"

	"tripoline/internal/graph"
	"tripoline/internal/props"
)

// chain builds 0→1→2→3 with weights 2, 4, 1.
func chain() *graph.CSR {
	return graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, W: 2}, {Src: 1, Dst: 2, W: 4}, {Src: 2, Dst: 3, W: 1},
	}, true)
}

func TestBestPathSSSPChain(t *testing.T) {
	d := BestPath(chain(), props.SSSP{}, 0)
	want := []uint64{0, 2, 6, 7}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist[%d]=%d, want %d", i, d[i], want[i])
		}
	}
}

func TestBestPathSSWPChain(t *testing.T) {
	d := BestPath(chain(), props.SSWP{}, 0)
	// Bottlenecks along the chain: ∞, 2, 2, 1.
	if d[1] != 2 || d[2] != 2 || d[3] != 1 {
		t.Fatalf("widths=%v", d[1:])
	}
}

func TestBestPathToReversesDirection(t *testing.T) {
	g := chain()
	d := BestPathTo(g, props.SSSP{}, 3)
	want := []uint64{7, 5, 1, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist-to[%d]=%d, want %d", i, d[i], want[i])
		}
	}
	// Forward from 3 reaches nothing.
	fwd := BestPath(g, props.SSSP{}, 3)
	if fwd[0] != props.Unreached {
		t.Fatal("forward from sink should not reach 0")
	}
}

func TestCountShortestPathsHandmade(t *testing.T) {
	//    0
	//   / \
	//  1   2
	//   \ / \
	//    3   4
	//     \ /
	//      5    two paths 0→3, one 0→4, three 0→5 (two via 3, one via 4)
	g := graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 0, Dst: 2, W: 1},
		{Src: 1, Dst: 3, W: 1}, {Src: 2, Dst: 3, W: 1}, {Src: 2, Dst: 4, W: 1},
		{Src: 3, Dst: 5, W: 1}, {Src: 4, Dst: 5, W: 1},
	}, true)
	levels, counts := CountShortestPaths(g, 0)
	wantLevels := []uint64{0, 1, 1, 2, 2, 3}
	wantCounts := []uint64{1, 1, 1, 2, 1, 3}
	for v := range wantLevels {
		if levels[v] != wantLevels[v] {
			t.Fatalf("level[%d]=%d, want %d", v, levels[v], wantLevels[v])
		}
		if counts[v] != wantCounts[v] {
			t.Fatalf("count[%d]=%d, want %d", v, counts[v], wantCounts[v])
		}
	}
}

func TestCountShortestPathsUnreachable(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, W: 1}}, true)
	levels, counts := CountShortestPaths(g, 0)
	if levels[2] != ^uint64(0) || counts[2] != 0 {
		t.Fatalf("unreachable vertex: level=%d count=%d", levels[2], counts[2])
	}
}

func TestComponentsHandmade(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 0, W: 1},
		{Src: 3, Dst: 4, W: 1}, {Src: 4, Dst: 3, W: 1},
		{Src: 4, Dst: 5, W: 1}, {Src: 5, Dst: 4, W: 1},
	}, true)
	labels := Components(g)
	want := []uint64{0, 0, 2, 3, 3, 3}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d]=%d, want %d", v, labels[v], want[v])
		}
	}
}

func TestComponentsSingletons(t *testing.T) {
	g := graph.FromEdges(4, nil, true)
	labels := Components(g)
	for v := range labels {
		if labels[v] != uint64(v) {
			t.Fatalf("singleton %d labeled %d", v, labels[v])
		}
	}
}
