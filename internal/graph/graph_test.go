package graph

import (
	"testing"
	"testing/quick"
)

func smallDirected() *CSR {
	// 0→1 (w2), 0→2 (w5), 1→2 (w1), 2→3 (w4), 3→0 (w1)
	return FromEdges(4, []Edge{
		{Src: 0, Dst: 1, W: 2}, {Src: 0, Dst: 2, W: 5}, {Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 3, W: 4}, {Src: 3, Dst: 0, W: 1},
	}, true)
}

func TestFromEdgesDirected(t *testing.T) {
	g := smallDirected()
	if g.N != 4 || g.NumEdges() != 5 {
		t.Fatalf("N=%d M=%d", g.N, g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(3) != 1 {
		t.Fatal("degrees wrong")
	}
	adj, wgt := g.Neighbors(0)
	if len(adj) != 2 || adj[0] != 1 || adj[1] != 2 || wgt[0] != 2 || wgt[1] != 5 {
		t.Fatalf("neighbors of 0 = %v %v", adj, wgt)
	}
}

func TestFromEdgesUndirectedMirrors(t *testing.T) {
	g := FromEdges(3, []Edge{{Src: 0, Dst: 1, W: 7}, {Src: 1, Dst: 2, W: 3}}, false)
	if g.NumEdges() != 4 {
		t.Fatalf("M=%d, want 4 (mirrored)", g.NumEdges())
	}
	if g.Degree(1) != 2 {
		t.Fatalf("deg(1)=%d", g.Degree(1))
	}
	adj, wgt := g.Neighbors(2)
	if len(adj) != 1 || adj[0] != 1 || wgt[0] != 3 {
		t.Fatal("mirror arc missing")
	}
}

func TestFromEdgesDedupFirstWins(t *testing.T) {
	g := FromEdges(2, []Edge{{Src: 0, Dst: 1, W: 1}, {Src: 0, Dst: 1, W: 9}, {Src: 0, Dst: 1, W: 5}}, true)
	if g.NumEdges() != 1 {
		t.Fatalf("M=%d, want 1", g.NumEdges())
	}
	_, wgt := g.Neighbors(0)
	if wgt[0] != 1 {
		t.Fatalf("weight=%d, want first duplicate 1", wgt[0])
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := FromEdges(5, []Edge{{Src: 0, Dst: 4, W: 1}, {Src: 0, Dst: 2, W: 1}, {Src: 0, Dst: 3, W: 1}, {Src: 0, Dst: 1, W: 1}}, true)
	adj, _ := g.Neighbors(0)
	for i := 1; i < len(adj); i++ {
		if adj[i-1] >= adj[i] {
			t.Fatalf("adjacency not sorted: %v", adj)
		}
	}
}

func TestForEachOut(t *testing.T) {
	g := smallDirected()
	var visited []VertexID
	g.ForEachOut(0, func(d VertexID, w Weight) { visited = append(visited, d) })
	if len(visited) != 2 || visited[0] != 1 || visited[1] != 2 {
		t.Fatalf("visited %v", visited)
	}
}

func TestTranspose(t *testing.T) {
	g := smallDirected()
	gt := g.Transpose()
	if gt.NumEdges() != g.NumEdges() {
		t.Fatal("transpose changed edge count")
	}
	// 0→1 in g must be 1→0 in gt with the same weight.
	adj, wgt := gt.Neighbors(1)
	if len(adj) != 1 || adj[0] != 0 || wgt[0] != 2 {
		t.Fatalf("transpose of 0→1 wrong: %v %v", adj, wgt)
	}
	// Double transpose is the identity on the arc set.
	gtt := gt.Transpose()
	for v := 0; v < g.N; v++ {
		a1, w1 := g.Neighbors(VertexID(v))
		a2, w2 := gtt.Neighbors(VertexID(v))
		if len(a1) != len(a2) {
			t.Fatalf("vertex %d degree differs after double transpose", v)
		}
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatalf("vertex %d arc %d differs", v, i)
			}
		}
	}
}

func TestTransposeQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 32
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				Src: VertexID(raw[i] % n), Dst: VertexID(raw[i+1] % n), W: 1,
			})
		}
		g := FromEdges(n, edges, true)
		gt := g.Transpose()
		// every arc u→v in g appears as v→u in gt
		ok := true
		for v := 0; v < n && ok; v++ {
			g.ForEachOut(VertexID(v), func(d VertexID, w Weight) {
				found := false
				gt.ForEachOut(d, func(d2 VertexID, w2 Weight) {
					if d2 == VertexID(v) && w2 == w {
						found = true
					}
				})
				if !found {
					ok = false
				}
			})
		}
		return ok && g.NumEdges() == gt.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatistics(t *testing.T) {
	g := smallDirected()
	s := g.Statistics("test")
	if s.N != 4 || s.M != 5 || s.MaxOutDegree != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.AvgOutDegree < 1.24 || s.AvgOutDegree > 1.26 {
		t.Fatalf("avg degree %v", s.AvgOutDegree)
	}
	if s.String() == "" {
		t.Fatal("empty string rendering")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(10, nil, true)
	if g.NumEdges() != 0 {
		t.Fatal("empty graph has edges")
	}
	for v := 0; v < 10; v++ {
		if g.Degree(VertexID(v)) != 0 {
			t.Fatal("phantom degree")
		}
	}
}

func TestSelfLoopKept(t *testing.T) {
	g := FromEdges(2, []Edge{{Src: 0, Dst: 0, W: 3}}, true)
	if g.NumEdges() != 1 {
		t.Fatal("self loop dropped")
	}
}
