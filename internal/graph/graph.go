// Package graph defines the basic graph vocabulary shared by the whole
// system — vertex IDs, weighted edges — and a static CSR (compressed sparse
// row) representation used for baselines, oracles, and the initial bulk
// load of the streaming engine.
package graph

import (
	"fmt"
	"sort"

	"tripoline/internal/parallel"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// IDs 0..n-1.
type VertexID = uint32

// Weight is an edge weight. All problems in the paper use positive
// integer-valued weights; weight 1 must be common for the Viterbi equality
// effect discussed in §6.2 of the paper to appear.
type Weight = uint32

// Edge is one directed, weighted edge. Undirected graphs store each edge in
// both directions.
type Edge struct {
	Src, Dst VertexID
	W        Weight
}

// CSR is an immutable compressed-sparse-row graph: the out-neighbors of
// vertex v are Adj[Off[v]:Off[v+1]], with weights in Wgt at the same
// positions. Adjacency lists are sorted by destination.
type CSR struct {
	Off      []int64
	Adj      []VertexID
	Wgt      []Weight
	N        int  // vertices
	Directed bool // whether the logical graph is directed
}

// NumEdges returns the number of stored directed arcs.
func (g *CSR) NumEdges() int64 { return int64(len(g.Adj)) }

// NumVertices returns the number of vertices (it satisfies the engine's
// graph View interface).
func (g *CSR) NumVertices() int { return g.N }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v VertexID) int {
	return int(g.Off[v+1] - g.Off[v])
}

// Neighbors returns the sorted out-neighbor and weight slices of v.
// The slices alias the graph and must not be modified.
func (g *CSR) Neighbors(v VertexID) ([]VertexID, []Weight) {
	lo, hi := g.Off[v], g.Off[v+1]
	return g.Adj[lo:hi], g.Wgt[lo:hi]
}

// OutSpan returns the sorted out-neighbor and weight slices of v (it
// satisfies the engine's FlatView fast-path interface). The slices alias
// the graph and must not be modified.
func (g *CSR) OutSpan(v VertexID) ([]VertexID, []Weight) {
	return g.Neighbors(v)
}

// Arcs exposes the whole CSR arc arrays at once (the engine's ArcView
// interface, used by the cache-blocked dense sweep): v's arcs are
// Adj[Off[v]:Off[v+1]], destination-sorted, weights at the same
// positions. The slices alias the graph and must not be modified.
func (g *CSR) Arcs() ([]int64, []VertexID, []Weight) {
	return g.Off, g.Adj, g.Wgt
}

// ForEachOut calls f(dst, w) for every out-edge of v.
func (g *CSR) ForEachOut(v VertexID, f func(dst VertexID, w Weight)) {
	lo, hi := g.Off[v], g.Off[v+1]
	for i := lo; i < hi; i++ {
		f(g.Adj[i], g.Wgt[i])
	}
}

// FromEdges builds a CSR over n vertices from an edge list. Parallel edges
// collapse to the first occurrence (the same first-wins rule the streaming
// engine applies to its grow-only edge stream, so static and streamed
// loads of one edge list agree exactly); self-loops are kept (harmless for
// every problem here). If directed is false the reverse arc of every edge
// is added automatically.
func FromEdges(n int, edges []Edge, directed bool) *CSR {
	arcs := edges
	if !directed {
		arcs = make([]Edge, 0, 2*len(edges))
		for _, e := range edges {
			arcs = append(arcs, e, Edge{Src: e.Dst, Dst: e.Src, W: e.W})
		}
	}
	deg := make([]int64, n+1)
	for _, e := range arcs {
		deg[e.Src+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := make([]VertexID, len(arcs))
	wgt := make([]Weight, len(arcs))
	fill := make([]int64, n)
	for _, e := range arcs {
		p := deg[e.Src] + fill[e.Src]
		adj[p] = e.Dst
		wgt[p] = e.W
		fill[e.Src]++
	}
	g := &CSR{Off: deg, Adj: adj, Wgt: wgt, N: n, Directed: directed}
	g.sortAndDedup()
	return g
}

// sortAndDedup sorts every adjacency list by destination and removes
// parallel edges (keeping the first weight written).
func (g *CSR) sortAndDedup() {
	type row struct {
		adj []VertexID
		wgt []Weight
	}
	rows := make([]row, g.N)
	parallel.For(g.N, func(v int) {
		lo, hi := g.Off[v], g.Off[v+1]
		adj, wgt := g.Adj[lo:hi], g.Wgt[lo:hi]
		idx := make([]int, len(adj))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if adj[idx[a]] != adj[idx[b]] {
				return adj[idx[a]] < adj[idx[b]]
			}
			return idx[a] < idx[b] // stable: earliest duplicate kept below
		})
		na := make([]VertexID, 0, len(adj))
		nw := make([]Weight, 0, len(adj))
		for _, i := range idx {
			if len(na) > 0 && na[len(na)-1] == adj[i] {
				continue // first duplicate wins
			}
			na = append(na, adj[i])
			nw = append(nw, wgt[i])
		}
		rows[v] = row{na, nw}
	})
	off := make([]int64, g.N+1)
	for v := 0; v < g.N; v++ {
		off[v+1] = off[v] + int64(len(rows[v].adj))
	}
	adj := make([]VertexID, off[g.N])
	wgt := make([]Weight, off[g.N])
	parallel.For(g.N, func(v int) {
		copy(adj[off[v]:], rows[v].adj)
		copy(wgt[off[v]:], rows[v].wgt)
	})
	g.Off, g.Adj, g.Wgt = off, adj, wgt
}

// Transpose returns the graph with every arc reversed. For undirected
// graphs the transpose equals the original (arcs are already symmetric).
func (g *CSR) Transpose() *CSR {
	edges := make([]Edge, 0, len(g.Adj))
	for v := 0; v < g.N; v++ {
		g.ForEachOut(VertexID(v), func(d VertexID, w Weight) {
			edges = append(edges, Edge{Src: d, Dst: VertexID(v), W: w})
		})
	}
	return FromEdges(g.N, edges, true)
}

// Stats summarizes a graph for Table 2-style reporting.
type Stats struct {
	Name         string
	Directed     bool
	N            int
	M            int64 // stored arcs
	AvgOutDegree float64
	MaxOutDegree int
}

// Statistics computes summary statistics of g.
func (g *CSR) Statistics(name string) Stats {
	maxDeg := int(parallel.MaxInt64(g.N, 0, func(v int) int64 {
		return int64(g.Degree(VertexID(v)))
	}))
	return Stats{
		Name:         name,
		Directed:     g.Directed,
		N:            g.N,
		M:            g.NumEdges(),
		AvgOutDegree: float64(g.NumEdges()) / float64(max(1, g.N)),
		MaxOutDegree: maxDeg,
	}
}

func (s Stats) String() string {
	kind := "undirected"
	if s.Directed {
		kind = "directed"
	}
	return fmt.Sprintf("%-14s %-10s |V|=%-9d |E|=%-10d avg-out=%.1f max-out=%d",
		s.Name, kind, s.N, s.M, s.AvgOutDegree, s.MaxOutDegree)
}
