//go:build tripoline_ledger

package server_test

import (
	"bufio"
	"net/http"
	"testing"

	"tripoline/internal/streamgraph"
)

// TestLedgerServingPath cross-checks the serving layer's pin hygiene:
// an SSE subscriber connects and disconnects mid-stream, queries warm
// the Δ-result cache, batches advance the version, and after a final
// reader-free batch the refcount ledger must account for every pin the
// handlers took. This is the dynamic witness for the long-poll/SSE
// teardown paths refbalance cannot see past net/http.
func TestLedgerServingPath(t *testing.T) {
	if !streamgraph.LedgerEnabled() {
		t.Fatal("test built without -tags tripoline_ledger")
	}
	streamgraph.LedgerReset()

	ts, _, _ := newServingStack(t, "BFS")

	// Warm the cache (pins the current mirror via cacheStore).
	for _, src := range []string{"3", "7", "11"} {
		resp, err := http.Get(ts.URL + "/v1/query?problem=BFS&source=" + src)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// Hold a subscription across a batch, then disconnect the client.
	resp, err := http.Get(ts.URL + "/v1/subscribe?problem=BFS&src=7")
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	readEvent(t, br) // snapshot frame

	var rep map[string]any
	postJSON(t, ts.URL+"/v1/batch",
		map[string]any{"edges": []map[string]any{{"src": 7, "dst": 42, "w": 3}}}, &rep)
	readEvent(t, br) // delta frame at the new version
	resp.Body.Close()

	// Final batch with no readers: cacheAdvance drops its pins and the
	// parent mirror retires; only owner references remain.
	postJSON(t, ts.URL+"/v1/batch",
		map[string]any{"edges": []map[string]any{{"src": 8, "dst": 43, "w": 2}}}, &rep)

	if leaks := streamgraph.LedgerReport(); len(leaks) != 0 {
		for _, l := range leaks {
			t.Errorf("leaked mirror v%d: %d pin(s) from %v", l.Version, l.Pins, l.Sites)
		}
	}
}
