package server

// SetTestHookAdmitted installs f to run inside every admitted request
// just before its handler, and returns a restore func. Harnesses (the
// package's own lifecycle tests, the loadgen conformance probe) use it
// to hold requests in flight deterministically — e.g. to pin the
// admission gate full while probing every endpoint for 429 behavior.
// Not safe to swap while requests are in flight; nil in production.
func SetTestHookAdmitted(f func(kind string)) (restore func()) {
	old := testHookAdmitted
	testHookAdmitted = f
	return func() { testHookAdmitted = old }
}
