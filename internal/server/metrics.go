package server

import (
	"tripoline/internal/core"
	"tripoline/internal/engine"
	"tripoline/internal/metrics"
)

// serverMetrics bundles the instruments the serving layer updates on
// every request. All are registered in one Registry so /v1/metrics and
// the /v1/stats JSON view stay in sync automatically.
type serverMetrics struct {
	reg *metrics.Registry

	queries            *metrics.Counter // user queries admitted (Δ or full)
	queriesFull        *metrics.Counter // of which explicitly full=1
	queriesIncremental *metrics.Counter // of which answered Δ-based
	batches            *metrics.Counter // insertion batches applied
	deletes            *metrics.Counter // deletion batches applied
	batchEdges         *metrics.Counter // edges across all batches
	activations        *metrics.Counter // engine vertex activations spent on queries
	hoists             *metrics.Counter // register-block hoists in the fused kernels
	gateSkips          *metrics.Counter // slots pruned at hoist time (still at the gate value)
	blockSweeps        *metrics.Counter // cache-blocked dense sweep passes
	rejected           *metrics.Counter // 429s from the admission gate
	canceled           *metrics.Counter // queries ended by deadline/disconnect
	errors             *metrics.Counter // other 4xx/5xx responses
	cacheHits          *metrics.Counter // queries served from the Δ-result cache
	cacheStaleServed   *metrics.Counter // of which at a non-current version
	subFrames          *metrics.Counter // subscription frames delivered
	subDropped         *metrics.Counter // subscription frames dropped (slow client)
	inflight           *metrics.Gauge   // requests currently executing
	subscribers        *metrics.Gauge   // open subscription streams

	queryLatency *metrics.Histogram // seconds, wall time incl. queueing
	writeLatency *metrics.Histogram // seconds, batch/delete wall time
	// fanoutFrames and fanoutSeconds describe each batch's subscription
	// refresh: how many frames one advance produced, and what the fused
	// width-K refresh cost — the per-batch serving price of the
	// subscriber population. Observed only when subscribers exist.
	fanoutFrames  *metrics.Histogram
	fanoutSeconds *metrics.Histogram
}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	return &serverMetrics{
		reg:                reg,
		queries:            reg.Counter("tripoline_queries_total", "User queries admitted for evaluation."),
		queriesFull:        reg.Counter("tripoline_queries_full_total", "Queries answered by full (non-incremental) evaluation on request."),
		queriesIncremental: reg.Counter("tripoline_queries_incremental_total", "Queries answered Delta-based from standing state."),
		batches:            reg.Counter("tripoline_batches_total", "Edge-insertion batches applied."),
		deletes:            reg.Counter("tripoline_deletes_total", "Edge-deletion batches applied."),
		batchEdges:         reg.Counter("tripoline_batch_edges_total", "Edges across all applied batches."),
		activations:        reg.Counter("tripoline_query_activations_total", "Engine vertex activations spent answering queries."),
		hoists:             reg.Counter("tripoline_kernel_hoists_total", "Register-block hoists performed by the fused width-K kernels."),
		gateSkips:          reg.Counter("tripoline_kernel_gate_skips_total", "Batch slots pruned at hoist time because the source was still at the gate value."),
		blockSweeps:        reg.Counter("tripoline_kernel_block_sweeps_total", "Cache-blocked dense sweep passes executed by the fused kernels."),
		rejected:           reg.Counter("tripoline_rejected_total", "Requests refused 429 by the admission gate."),
		canceled:           reg.Counter("tripoline_canceled_total", "Queries ended early by deadline or client disconnect."),
		errors:             reg.Counter("tripoline_errors_total", "Requests answered with another 4xx/5xx status."),
		cacheHits:          reg.Counter("tripoline_cache_hits_total", "Queries served from the Delta-result cache, bypassing the admission gate."),
		cacheStaleServed:   reg.Counter("tripoline_cache_stale_served_total", "Cache hits served at a non-current version under stale=ok."),
		subFrames:          reg.Counter("tripoline_subscribe_frames_total", "Subscription result frames delivered to clients."),
		subDropped:         reg.Counter("tripoline_subscribe_dropped_total", "Subscription frames dropped because a client's buffer was full."),
		inflight:           reg.Gauge("tripoline_inflight", "Requests currently executing."),
		subscribers:        reg.Gauge("tripoline_subscribers", "Subscription streams currently open."),
		queryLatency:       reg.Histogram("tripoline_query_seconds", "Query request latency in seconds.", metrics.DefBuckets),
		writeLatency:       reg.Histogram("tripoline_write_seconds", "Batch/delete request latency in seconds.", metrics.DefBuckets),
		fanoutFrames:       reg.Histogram("tripoline_subscribe_fanout_frames", "Result frames produced by one batch's subscription refresh.", []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000}),
		fanoutSeconds:      reg.Histogram("tripoline_subscribe_refresh_seconds", "Wall time of one batch's fused subscription refresh.", metrics.DefBuckets),
	}
}

// observeFanout folds one batch report's subscription refresh into the
// fan-out instruments. Batches with no subscribers are not observed —
// the histograms describe the serving cost per fan-out, not per batch.
func (m *serverMetrics) observeFanout(rep core.BatchReport) {
	if rep.Subscribers == 0 {
		return
	}
	m.subFrames.Add(int64(rep.FramesSent))
	m.subDropped.Add(int64(rep.FramesDropped))
	m.fanoutFrames.Observe(float64(rep.FramesSent))
	m.fanoutSeconds.Observe(rep.RefreshElapsed.Seconds())
}

// observeEngine folds one query's engine statistics into the counters,
// so /v1/stats exposes the fused-kernel work alongside activations.
func (m *serverMetrics) observeEngine(st engine.Stats) {
	m.activations.Add(st.Activations)
	m.hoists.Add(st.Hoists)
	m.gateSkips.Add(st.GateSkips)
	m.blockSweeps.Add(st.BlockSweeps)
}
