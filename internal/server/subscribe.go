package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tripoline/internal/core"
	"tripoline/internal/graph"
)

// GET /v1/subscribe?problem=P&src=u — the push half of the serving
// layer. The server registers a subscription with the system, streams
// the initial snapshot frame and then one delta frame per applied batch
// as Server-Sent Events, and tears the subscription down when the client
// disconnects or the server drains.
//
// Admission: computing the baseline answer is a real evaluation, so it
// passes through the admission gate like any query; the slot is released
// as soon as the baseline is ready — the long-lived streaming phase
// costs no slot, because frames are produced by the writer's fused
// refresh and the stream merely copies them out.
//
// Drain: open streams are counted in the server's inflight group, so
// Drain waits for them — and they end promptly because every stream
// selects on the server's drain channel, emitting a final `goodbye`
// event before closing. Without that, a drained server would hang on
// streams that have no natural end.
//
// ?mode=poll selects the long-poll fallback for clients that cannot
// consume SSE: the request discards the snapshot (the client can get it
// from /v1/query) and blocks until the first *change* to the answer,
// returning that delta frame as a plain JSON body — or 204 after ?wait
// seconds (default 30) without one.

// defaultPollWait bounds a long-poll request that sees no change.
const defaultPollWait = 30 * time.Second

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	q := r.URL.Query()
	problem := q.Get("problem")
	srcStr := q.Get("src")
	if srcStr == "" {
		srcStr = q.Get("source")
	}
	if problem == "" {
		writeErr(w, http.StatusBadRequest, "missing ?problem")
		return
	}
	src, err := strconv.ParseUint(srcStr, 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad ?src=%q", srcStr)
		return
	}

	s.inflight.Add(1)
	defer s.inflight.Done()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	// Gate the baseline evaluation only.
	if s.gate != nil {
		if err := s.gate.acquire(r.Context()); err != nil {
			if errors.Is(err, errSaturated) {
				s.met.rejected.Inc()
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests, "server saturated: %v", err)
			} else {
				writeErr(w, StatusClientClosedRequest, "client gone while queued: %v", err)
			}
			return
		}
	}
	setupCtx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		setupCtx, cancel = context.WithTimeout(setupCtx, s.queryTimeout)
		defer cancel()
	}
	sub, err := s.sys.SubscribeCtx(setupCtx, problem, graph.VertexID(src), s.subBuffer)
	if s.gate != nil {
		s.gate.release()
	}
	if err != nil {
		s.met.errors.Inc()
		writeErr(w, statusFor(err), "%v", err)
		return
	}
	defer s.sys.Unsubscribe(sub)
	s.met.subscribers.Add(1)
	defer s.met.subscribers.Add(-1)

	flusher, canFlush := w.(http.Flusher)
	if q.Get("mode") == "poll" || !canFlush {
		s.servePoll(w, r, sub)
		return
	}
	s.serveSSE(w, r, flusher, sub)
}

// serveSSE streams frames until the client disconnects, the server
// drains, or the subscription closes.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, flusher http.Flusher, sub *core.Subscription) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case f, ok := <-sub.Frames():
			if !ok {
				return
			}
			if writeEvent(w, f.Kind, f) != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// Tell the client this is a shutdown, not a failure, so it
			// reconnects elsewhere instead of retrying here.
			_ = writeEvent(w, "goodbye", struct{}{})
			flusher.Flush()
			return
		}
	}
}

// writeEvent emits one SSE frame: event name plus a single JSON data line.
func writeEvent(w http.ResponseWriter, event string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// servePoll is the long-poll fallback: skip the snapshot frame, block
// until the answer changes (the first delta frame), and return it as a
// plain JSON body. 204 when ?wait seconds pass without a change.
func (s *Server) servePoll(w http.ResponseWriter, r *http.Request, sub *core.Subscription) {
	wait := defaultPollWait
	if ws := r.URL.Query().Get("wait"); ws != "" {
		if sec, err := strconv.ParseUint(ws, 10, 16); err == nil && sec > 0 {
			wait = time.Duration(sec) * time.Second
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		select {
		case f, ok := <-sub.Frames():
			if !ok {
				w.WriteHeader(http.StatusNoContent)
				return
			}
			if f.Kind == "snapshot" {
				continue
			}
			w.Header().Set("X-Tripoline-Version", strconv.FormatUint(f.Version, 10))
			writeJSON(w, f)
			return
		case <-timer.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			writeErr(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
	}
}
