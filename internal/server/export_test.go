package server

// SetTestHookAdmitted installs f to run inside every admitted request
// and returns a restore func. Lifecycle tests use it to hold requests in
// flight deterministically.
func SetTestHookAdmitted(f func(kind string)) (restore func()) {
	old := testHookAdmitted
	testHookAdmitted = f
	return func() { testHookAdmitted = old }
}
