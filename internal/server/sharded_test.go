package server_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tripoline/internal/core"
	"tripoline/internal/gen"
	"tripoline/internal/server"
	"tripoline/internal/shard"
	"tripoline/internal/streamgraph"
)

// newShardedTestServer serves a 4-shard router plus an identically fed
// unsharded reference system for answer comparison.
func newShardedTestServer(t *testing.T, shards int, problems ...string) (*httptest.Server, *core.System) {
	t.Helper()
	edges := gen.Uniform(100, 900, 8, 201)
	g := streamgraph.New(100, false)
	g.InsertEdges(edges)
	ref := core.NewSystem(g, 4)
	r := shard.New(100, false, shards, 4)
	r.ApplyBatch(edges)
	for _, p := range problems {
		if err := ref.Enable(p); err != nil {
			t.Fatal(err)
		}
		if err := r.Enable(p); err != nil {
			t.Fatal(err)
		}
	}
	r.EnableResultCache(64)
	ts := httptest.NewServer(server.NewSharded(r))
	t.Cleanup(ts.Close)
	return ts, ref
}

func TestShardedStatsEndpoint(t *testing.T) {
	ts, _ := newShardedTestServer(t, 4, "SSSP")
	var stats struct {
		Vertices int            `json:"vertices"`
		Edges    int64          `json:"edges"`
		Version  uint64         `json:"version"`
		Shards   int            `json:"shards"`
		Problems []string       `json:"problems"`
		Metrics  map[string]any `json:"metrics"`
	}
	// One API batch, then stats: shard counters attach at NewSharded, so
	// this batch (fanned to up to 4 sub-batches) is their first sample.
	var rep struct {
		Version uint64 `json:"version"`
	}
	body := map[string]any{"edges": []map[string]any{
		{"src": 1, "dst": 90, "w": 2}, {"src": 2, "dst": 91, "w": 2},
		{"src": 3, "dst": 92, "w": 2}, {"src": 4, "dst": 93, "w": 2},
	}}
	if code := postJSON(t, ts.URL+"/v1/batch", body, &rep); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("status %d", code)
	}
	if stats.Shards != 4 {
		t.Fatalf("shards=%d, want 4", stats.Shards)
	}
	if stats.Vertices != 100 || stats.Version != 2 {
		t.Fatalf("stats %+v", stats)
	}
	if got, ok := stats.Metrics["tripoline_shard_batches_total"]; !ok || got.(float64) != 1 {
		t.Fatalf("tripoline_shard_batches_total=%v ok=%v", got, ok)
	}
	if got := stats.Metrics["tripoline_shard_subbatches_total"]; got.(float64) < 2 {
		t.Fatalf("tripoline_shard_subbatches_total=%v, want >= 2", got)
	}
	// Mirror metrics aggregate across all shard graphs in the same
	// registry keys the unsharded server uses.
	if _, ok := stats.Metrics["tripoline_mirror_delta_builds_total"]; !ok {
		keys := make([]string, 0, len(stats.Metrics))
		for k := range stats.Metrics {
			keys = append(keys, k)
		}
		t.Fatalf("mirror metrics missing from sharded stats: %v", keys)
	}
}

func TestShardedQueryMatchesUnsharded(t *testing.T) {
	ts, ref := newShardedTestServer(t, 4, "SSSP", "BFS")
	for _, p := range []string{"SSSP", "BFS"} {
		want, err := ref.Query(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Values  []uint64 `json:"values"`
			Version uint64   `json:"version"`
		}
		if code := getJSON(t, ts.URL+"/v1/query?problem="+p+"&source=7", &got); code != 200 {
			t.Fatalf("status %d", code)
		}
		if got.Version != want.Version {
			t.Fatalf("%s version %d vs %d", p, got.Version, want.Version)
		}
		for v := range want.Values {
			if got.Values[v] != want.Values[v] {
				t.Fatalf("%s: sharded server diverges from core at vertex %d", p, v)
			}
		}
	}
}

func TestShardedCacheServing(t *testing.T) {
	ts, _ := newShardedTestServer(t, 4, "SSSP")
	// First query populates the router cache; the repeat must be served
	// from it (X-Tripoline-Cache: hit), keyed by the global version.
	for i, wantHit := range []bool{false, true} {
		resp, err := http.Get(ts.URL + "/v1/query?problem=SSSP&source=3")
		if err != nil {
			t.Fatal(err)
		}
		hit := resp.Header.Get("X-Tripoline-Cache") == "hit"
		resp.Body.Close()
		if hit != wantHit {
			t.Fatalf("request %d: cache hit=%v, want %v", i, hit, wantHit)
		}
	}
}

func TestShardedSubscribeRefused(t *testing.T) {
	ts, _ := newShardedTestServer(t, 4, "SSSP")
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	code := getJSON(t, ts.URL+"/v1/subscribe?problem=SSSP&src=3", &e)
	if code == 200 {
		t.Fatal("subscribe on a sharded server must be refused")
	}
	if !strings.Contains(e.Error.Message, "shard") {
		t.Fatalf("error %+v", e.Error)
	}
}
