package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"tripoline/internal/core"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/oracle"
	"tripoline/internal/props"
	"tripoline/internal/server"
	"tripoline/internal/streamgraph"
)

// TestInterleavedWritesAndReads hammers one server with concurrent batch
// writers, query readers, and a Drain, then audits every successful
// query after the fact: with history retaining all versions, each
// response's reported version names the exact graph it was computed
// against, so a from-scratch oracle on that snapshot must reproduce the
// values bit for bit. This is the soundness contract of the standing
// lock (core.System.stMu) made testable — a reader that paired
// post-batch standing bounds with a pre-batch snapshot (or vice versa)
// would converge to values no historical graph can explain. Run it with
// -race for the full effect; it is also what CI does.
func TestInterleavedWritesAndReads(t *testing.T) {
	const (
		n       = 64
		writers = 2
		batches = 12 // per writer
		readers = 4
		queries = 25 // per reader
	)
	g := streamgraph.New(n, false)
	g.InsertEdges(gen.Uniform(n, 3*n, 8, 77))
	sys := core.NewSystem(g, 4)
	if err := sys.Enable("BFS"); err != nil {
		t.Fatal(err)
	}
	// Retain every version so the audit can reconstruct any graph a
	// response claims to be about.
	sys.EnableHistory(1 << 14)
	srv := server.New(sys, g)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type obs struct {
		source  graph.VertexID
		version uint64
		values  []uint64
	}
	var (
		mu       sync.Mutex
		results  []obs
		failures []string
	)
	report := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 8 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}

	// Hold the drain back until every reader is past the halfway mark, so
	// the test always has a healthy population of pre-drain successes and
	// the drain still overlaps live traffic.
	var halfway sync.WaitGroup
	halfway.Add(readers)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				edges := gen.Uniform(n, 6, 8, uint64(1000*w+b))
				body := struct {
					Edges []struct {
						Src uint32 `json:"src"`
						Dst uint32 `json:"dst"`
						W   uint32 `json:"w"`
					} `json:"edges"`
				}{}
				for _, e := range edges {
					body.Edges = append(body.Edges, struct {
						Src uint32 `json:"src"`
						Dst uint32 `json:"dst"`
						W   uint32 `json:"w"`
					}{uint32(e.Src), uint32(e.Dst), uint32(e.W)})
				}
				// 503 after Drain starts is a legal outcome; anything else
				// non-200 is not.
				if code := postJSONCode(t, ts.URL+"/v1/batch", body); code != http.StatusOK && code != http.StatusServiceUnavailable {
					report("writer %d batch %d: status %d", w, b, code)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			passed := false
			for q := 0; q < queries; q++ {
				if !passed && q >= queries/2 {
					halfway.Done()
					passed = true
				}
				src := (r*queries + q*7) % n
				url := fmt.Sprintf("%s/v1/query?problem=BFS&source=%d", ts.URL, src)
				if q%5 == 0 {
					url += "&full=1"
				}
				resp, err := http.Get(url)
				if err != nil {
					report("reader %d: %v", r, err)
					if !passed {
						halfway.Done()
					}
					return
				}
				var qr struct {
					Version uint64   `json:"version"`
					Values  []uint64 `json:"values"`
				}
				code := resp.StatusCode
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if code == http.StatusServiceUnavailable {
					continue // drained
				}
				if code != http.StatusOK || err != nil {
					report("reader %d src %d: status %d err %v", r, src, code, err)
					continue
				}
				mu.Lock()
				results = append(results, obs{graph.VertexID(src), qr.Version, qr.Values})
				mu.Unlock()
			}
		}(r)
	}
	// Drain while traffic is still in flight: in-flight requests must
	// finish normally, later ones get 503 — never a torn result.
	wg.Add(1)
	go func() {
		defer wg.Done()
		halfway.Wait()
		if err := srv.Drain(context.Background()); err != nil {
			report("drain: %v", err)
		}
	}()
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	if len(results) == 0 {
		t.Fatal("no successful queries to audit")
	}
	// Post-hoc audit: each result against the oracle for its version.
	csrs := make(map[uint64]*graph.CSR)
	for _, o := range results {
		csr, ok := csrs[o.version]
		if !ok {
			snap, found := sys.HistoryAt(o.version)
			if !found {
				t.Fatalf("src %d: reported version %d not in history", o.source, o.version)
			}
			csr = snap.CSR(false)
			csrs[o.version] = csr
		}
		if len(o.values) != csr.N {
			t.Fatalf("src %d v=%d: %d values for %d vertices", o.source, o.version, len(o.values), csr.N)
		}
		want := oracle.BestPath(csr, props.BFS{}, o.source)
		for v := range want {
			if o.values[v] != want[v] {
				t.Fatalf("src %d v=%d: level[%d]=%d, oracle %d — result does not match the graph it claims to be about",
					o.source, o.version, v, o.values[v], want[v])
			}
		}
	}
	t.Logf("audited %d successful queries across %d distinct versions", len(results), len(csrs))
}

// postJSONCode posts without decoding the response (concurrent-safe: no
// t.Fatal).
func postJSONCode(t *testing.T, url string, body any) int {
	b, err := json.Marshal(body)
	if err != nil {
		t.Error(err)
		return 0
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Error(err)
		return 0
	}
	defer resp.Body.Close()
	return resp.StatusCode
}
