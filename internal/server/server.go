// Package server exposes a Tripoline system over HTTP with a small JSON
// API, turning the library into a deployable query service: update
// batches stream in through POSTs, and user queries — the whole point of
// the paper, queries whose source vertex is not known in advance —
// arrive as GETs and are answered Δ-based.
//
// Endpoints:
//
//	GET  /v1/stats                       graph + system summary
//	GET  /v1/query?problem=SSWP&source=5 one Δ-based user query
//	GET  /v1/query?...&full=1            the non-incremental baseline
//	GET  /v1/queryat?version=3&...       query a retained past snapshot
//	POST /v1/querymany {"problem":"SSSP","sources":[3,9]}
//	POST /v1/batch   {"edges":[{"src":1,"dst":2,"w":3}, ...]}
//	POST /v1/delete  {"edges":[...]}
//
// Writes (batch/delete) are serialized through the system's exclusive
// update path; queries run concurrently against immutable snapshots.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"tripoline/internal/core"
	"tripoline/internal/graph"
	"tripoline/internal/streamgraph"
)

// Server is the HTTP front end over one Tripoline system.
type Server struct {
	sys *core.System
	g   *streamgraph.Graph

	// writeMu serializes graph mutations; queries need no lock (they
	// operate on acquired snapshots and read-only standing arrays, which
	// mutate only under writeMu between batches).
	writeMu sync.Mutex
	mux     *http.ServeMux
}

// New wraps a system. The caller keeps ownership: batches may also be
// applied directly as long as they are not concurrent with ServeHTTP
// writes (use the server's endpoints once serving).
func New(sys *core.System, g *streamgraph.Graph) *Server {
	s := &Server{sys: sys, g: g, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/queryat", s.handleQueryAt)
	s.mux.HandleFunc("POST /v1/querymany", s.handleQueryMany)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/delete", s.handleDelete)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// edgeJSON is the wire form of one edge.
type edgeJSON struct {
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
	W   uint32 `json:"w"`
}

type batchRequest struct {
	Edges []edgeJSON `json:"edges"`
}

type batchResponse struct {
	Applied         int     `json:"applied"`
	ChangedSources  int     `json:"changed_sources"`
	Version         uint64  `json:"version"`
	StandingSeconds float64 `json:"standing_seconds"`
}

type statsResponse struct {
	Vertices int      `json:"vertices"`
	Edges    int64    `json:"edges"`
	Version  uint64   `json:"version"`
	Directed bool     `json:"directed"`
	Problems []string `json:"problems"`
}

type queryResponse struct {
	Problem     string   `json:"problem"`
	Source      uint32   `json:"source"`
	Incremental bool     `json:"incremental"`
	Seconds     float64  `json:"seconds"`
	Activations int64    `json:"activations"`
	Values      []uint64 `json:"values"`
	Counts      []uint64 `json:"counts,omitempty"`
	Radius      uint64   `json:"radius,omitempty"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.g.Acquire()
	writeJSON(w, statsResponse{
		Vertices: snap.NumVertices(),
		Edges:    snap.NumEdges(),
		Version:  snap.Version(),
		Directed: s.g.Directed(),
		Problems: s.sys.Enabled(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	problem := r.URL.Query().Get("problem")
	if problem == "" {
		writeErr(w, http.StatusBadRequest, "missing ?problem")
		return
	}
	srcStr := r.URL.Query().Get("source")
	src, err := strconv.ParseUint(srcStr, 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad ?source=%q", srcStr)
		return
	}
	if int(src) >= s.g.Acquire().NumVertices() {
		writeErr(w, http.StatusBadRequest, "source %d out of range", src)
		return
	}
	var res *core.QueryResult
	if r.URL.Query().Get("full") != "" {
		res, err = s.sys.QueryFull(problem, graph.VertexID(src))
	} else {
		res, err = s.sys.Query(problem, graph.VertexID(src))
	}
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, queryResponse{
		Problem:     res.Problem,
		Source:      uint32(res.Source),
		Incremental: res.Incremental,
		Seconds:     res.Elapsed.Seconds(),
		Activations: res.Stats.Activations,
		Values:      res.Values,
		Counts:      res.Counts,
		Radius:      res.Radius,
	})
}

// handleQueryAt answers against a retained historical snapshot; the
// system must have history enabled (core.System.EnableHistory).
func (s *Server) handleQueryAt(w http.ResponseWriter, r *http.Request) {
	problem := r.URL.Query().Get("problem")
	srcStr := r.URL.Query().Get("source")
	verStr := r.URL.Query().Get("version")
	src, err := strconv.ParseUint(srcStr, 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad ?source=%q", srcStr)
		return
	}
	version, err := strconv.ParseUint(verStr, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad ?version=%q", verStr)
		return
	}
	res, err := s.sys.QueryAt(version, problem, graph.VertexID(src))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, queryResponse{
		Problem:     res.Problem,
		Source:      uint32(res.Source),
		Incremental: res.Incremental,
		Seconds:     res.Elapsed.Seconds(),
		Activations: res.Stats.Activations,
		Values:      res.Values,
		Counts:      res.Counts,
		Radius:      res.Radius,
	})
}

type queryManyRequest struct {
	Problem string   `json:"problem"`
	Sources []uint32 `json:"sources"`
}

type queryManyResponse struct {
	Problem string   `json:"problem"`
	Sources []uint32 `json:"sources"`
	Width   int      `json:"width"`
	Seconds float64  `json:"seconds"`
	// Values is the stride-Width array: Values[x*Width+j] is query j's
	// value at vertex x.
	Values []uint64 `json:"values"`
}

func (s *Server) handleQueryMany(w http.ResponseWriter, r *http.Request) {
	var req queryManyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	sources := make([]graph.VertexID, len(req.Sources))
	for i, u := range req.Sources {
		sources[i] = graph.VertexID(u)
	}
	res, err := s.sys.QueryMany(req.Problem, sources)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, queryManyResponse{
		Problem: res.Problem,
		Sources: req.Sources,
		Width:   res.Width,
		Seconds: res.Elapsed.Seconds(),
		Values:  res.Values,
	})
}

func (s *Server) decodeEdges(w http.ResponseWriter, r *http.Request) ([]graph.Edge, bool) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return nil, false
	}
	if len(req.Edges) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return nil, false
	}
	edges := make([]graph.Edge, len(req.Edges))
	for i, e := range req.Edges {
		if e.W == 0 {
			e.W = 1
		}
		edges[i] = graph.Edge{Src: e.Src, Dst: e.Dst, W: e.W}
	}
	return edges, true
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	edges, ok := s.decodeEdges(w, r)
	if !ok {
		return
	}
	s.writeMu.Lock()
	rep := s.sys.ApplyBatch(edges)
	s.writeMu.Unlock()
	writeJSON(w, batchResponse{
		Applied:         rep.BatchEdges,
		ChangedSources:  rep.ChangedSources,
		Version:         rep.Version,
		StandingSeconds: rep.StandingElapsed.Seconds(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	edges, ok := s.decodeEdges(w, r)
	if !ok {
		return
	}
	s.writeMu.Lock()
	rep := s.sys.ApplyDeletions(edges)
	s.writeMu.Unlock()
	writeJSON(w, batchResponse{
		Applied:         rep.BatchEdges,
		ChangedSources:  rep.ChangedSources,
		Version:         rep.Version,
		StandingSeconds: rep.StandingElapsed.Seconds(),
	})
}
