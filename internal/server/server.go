// Package server exposes a Tripoline system over HTTP with a small JSON
// API, turning the library into a deployable query service: update
// batches stream in through POSTs, and user queries — the whole point of
// the paper, queries whose source vertex is not known in advance —
// arrive as GETs and are answered Δ-based.
//
// Endpoints:
//
//	GET  /v1/stats                       graph + system + metrics summary
//	GET  /v1/metrics                     Prometheus text exposition
//	GET  /v1/query?problem=SSWP&source=5 one Δ-based user query
//	GET  /v1/query?...&full=1            the non-incremental baseline
//	GET  /v1/query?...&stale=ok          accept a cached past-version answer
//	GET  /v1/queryat?version=3&...       query a retained past snapshot
//	GET  /v1/subscribe?problem=P&src=5   push stream of result deltas (SSE)
//	POST /v1/querymany {"problem":"SSSP","sources":[3,9]}
//	POST /v1/batch   {"edges":[{"src":1,"dst":2,"w":3}, ...]}
//	POST /v1/delete  {"edges":[...]}
//
// Writes (batch/delete) are serialized through the system's exclusive
// update path; queries run concurrently against immutable snapshots.
//
// The server owns the query lifecycle: every request gets a
// context.Context carrying the endpoint's deadline, which the engine
// checks at superstep boundaries, so a slow query is abandoned promptly
// instead of burning cores to completion for a client that stopped
// waiting. An admission gate bounds the number of evaluations in flight
// (a semaphore with a bounded wait queue; overflow is answered 429), and
// Drain provides graceful shutdown: stop admitting, finish what is
// running (open subscription streams get a goodbye event and close).
//
// When the system's Δ-result cache is enabled, /v1/query and /v1/queryat
// consult it *before* the admission gate: a hit costs no evaluation
// slot. Every error is a JSON envelope
// {"error":{"code":"...","message":"..."}} whose code is one of
// not_found, bad_request, canceled, deadline, draining, overloaded or
// internal, mapped from the core package's sentinel errors.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tripoline/internal/core"
	"tripoline/internal/graph"
	"tripoline/internal/metrics"
	"tripoline/internal/shard"
	"tripoline/internal/streamgraph"
)

// StatusClientClosedRequest is the non-standard (nginx-convention) code
// reported when a query was abandoned because the client went away.
const StatusClientClosedRequest = 499

// backend is the serving surface the HTTP layer needs — the method set
// shared by an unsharded core.System (wrapped with its graph for the
// stats accessors) and a sharded shard.Router. Every handler goes
// through this interface, so the endpoints behave identically over one
// core or S hash-partitioned ones.
type backend interface {
	Enabled() []string
	NumVertices() int
	NumEdges() int64
	Version() uint64
	Directed() bool
	QueryCtx(ctx context.Context, problem string, u graph.VertexID) (*core.QueryResult, error)
	QueryFullCtx(ctx context.Context, problem string, u graph.VertexID) (*core.QueryResult, error)
	QueryAtCtx(ctx context.Context, version uint64, problem string, u graph.VertexID) (*core.QueryResult, error)
	QueryManyCtx(ctx context.Context, problem string, sources []graph.VertexID) (*core.MultiResult, error)
	ApplyBatchCtx(ctx context.Context, batch []graph.Edge) (core.BatchReport, error)
	ApplyDeletionsCtx(ctx context.Context, batch []graph.Edge) (core.BatchReport, error)
	CachedQuery(problem string, u graph.VertexID, minVersion uint64, staleOK bool) (*core.QueryResult, uint64, bool)
	CachedQueryAt(problem string, u graph.VertexID, version uint64) (*core.QueryResult, bool)
	SubscribeCtx(ctx context.Context, problem string, u graph.VertexID, buffer int) (*core.Subscription, error)
	Unsubscribe(sub *core.Subscription)
	Subscribers() int
	ResultCacheMetrics() core.CacheMetrics
	SetMirrorMetrics(m *streamgraph.MirrorMetrics)
}

// coreBackend adapts the unsharded pair (core.System, its graph) to the
// backend interface; the graph supplies the topology accessors the
// system doesn't carry.
type coreBackend struct {
	*core.System
	g *streamgraph.Graph
}

func (b coreBackend) NumVertices() int { return b.g.Acquire().NumVertices() }
func (b coreBackend) NumEdges() int64  { return b.g.Acquire().NumEdges() }
func (b coreBackend) Version() uint64  { return b.g.Acquire().Version() }
func (b coreBackend) Directed() bool   { return b.g.Directed() }

func (b coreBackend) SetMirrorMetrics(m *streamgraph.MirrorMetrics) { b.g.SetMirrorMetrics(m) }

// Server is the HTTP front end over one Tripoline system.
type Server struct {
	sys    backend
	shards int // 1 for an unsharded backend

	// writeMu serializes graph mutations; queries need no lock (they
	// operate on acquired snapshots and read-only standing arrays, which
	// mutate only under writeMu between batches).
	writeMu sync.Mutex
	mux     *http.ServeMux

	queryTimeout time.Duration // per-query deadline; 0 = none
	writeTimeout time.Duration // per-batch/delete deadline; 0 = none
	gate         *gate         // nil = unbounded admission
	met          *serverMetrics

	// draining flips once and permanently: new requests are refused with
	// 503 while in-flight ones run out under the inflight WaitGroup.
	// drainCh closes at the same flip so long-lived subscription streams
	// (which are counted in inflight) notice and shut down promptly —
	// without it Drain would wait on streams that have no reason to end.
	drainMu  sync.Mutex
	draining bool
	drainCh  chan struct{}
	inflight sync.WaitGroup

	subBuffer int // per-subscription frame buffer (0 = core default)
}

// Option configures a Server (the same functional-option pattern as the
// tripoline package root).
type Option func(*Server)

// WithQueryTimeout caps the wall time of one query evaluation
// (/v1/query, /v1/queryat, /v1/querymany). The engine observes the
// deadline at superstep boundaries; an expired query returns 504 (or 499
// if the client disconnected first). Zero disables the cap.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// WithWriteTimeout caps the wall time of one update batch (/v1/batch,
// /v1/delete). The deadline gates admission only — an admitted batch
// always completes so standing state never desyncs from its snapshot.
// Zero disables the cap.
func WithWriteTimeout(d time.Duration) Option {
	return func(s *Server) { s.writeTimeout = d }
}

// WithMaxInFlight bounds the number of requests evaluating concurrently
// to n; up to queue further requests wait for a slot (respecting their
// deadlines), and anything beyond that is refused immediately with 429.
// n <= 0 leaves admission unbounded.
func WithMaxInFlight(n, queue int) Option {
	return func(s *Server) {
		if n <= 0 {
			s.gate = nil
			return
		}
		if queue < 0 {
			queue = 0
		}
		s.gate = &gate{sem: make(chan struct{}, n), maxQueue: int64(queue)}
	}
}

// WithMetrics installs a shared metrics registry (so one process can
// aggregate several servers, or tests can inspect counts). Without this
// option the server creates its own registry.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Server) { s.met = newServerMetrics(reg) }
}

// WithSubscriptionBuffer sets the per-subscription frame-channel
// capacity (how many undelivered frames a slow client may pin before
// refreshes skip it). n <= 0 keeps the core default.
func WithSubscriptionBuffer(n int) Option {
	return func(s *Server) { s.subBuffer = n }
}

// New wraps a system. The caller keeps ownership: batches may also be
// applied directly as long as they are not concurrent with ServeHTTP
// writes (use the server's endpoints once serving).
func New(sys *core.System, g *streamgraph.Graph, opts ...Option) *Server {
	return newServer(coreBackend{System: sys, g: g}, 1, nil, opts)
}

// NewSharded serves a shard.Router: the same endpoints, answered by
// scatter/gather over the router's hash-partitioned cores. The router's
// per-shard counters (tripoline_shard_*) are registered into the server
// registry, and one shared mirror-metrics instrument is fanned out to
// every shard's graph so /v1/stats and /v1/metrics report mirror and
// cache activity aggregated across all shards.
func NewSharded(r *shard.Router, opts ...Option) *Server {
	return newServer(r, r.Shards(), r.SetMetrics, opts)
}

func newServer(be backend, shards int, shardMetrics func(*shard.Metrics), opts []Option) *Server {
	s := &Server{sys: be, shards: shards, mux: http.NewServeMux(), drainCh: make(chan struct{})}
	for _, o := range opts {
		o(s)
	}
	if s.met == nil {
		s.met = newServerMetrics(metrics.NewRegistry())
	}
	// Route the graph's mirror-maintenance instruments (delta vs. full
	// builds, bytes copied vs. walked, slab recycler traffic) into the
	// server registry so they surface in /v1/stats and /v1/metrics. A
	// sharded backend fans the same instrument out to every shard's
	// graph, so the counters aggregate across shards by construction.
	s.sys.SetMirrorMetrics(streamgraph.RegisterMirrorMetrics(s.met.reg))
	if shardMetrics != nil {
		shardMetrics(shard.RegisterMetrics(s.met.reg))
	}
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/query", s.cached(s.tryCachedQuery, s.lifecycle("query", s.queryTimeout, s.handleQuery)))
	s.mux.HandleFunc("GET /v1/queryat", s.cached(s.tryCachedQueryAt, s.lifecycle("query", s.queryTimeout, s.handleQueryAt)))
	s.mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("POST /v1/querymany", s.lifecycle("query", s.queryTimeout, s.handleQueryMany))
	s.mux.HandleFunc("POST /v1/batch", s.lifecycle("write", s.writeTimeout, s.handleBatch))
	s.mux.HandleFunc("POST /v1/delete", s.lifecycle("write", s.writeTimeout, s.handleDelete))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting requests (new ones get 503) and blocks until all
// in-flight requests finish or ctx expires, returning ctx.Err() in the
// latter case. It is idempotent; a drained server stays drained.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh) // wake open subscription streams
	}
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isDraining reports whether Drain has been called.
func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// gate is the bounded-concurrency admission control: sem caps the
// evaluations running, queued/maxQueue cap the ones waiting for a slot.
type gate struct {
	sem      chan struct{}
	queued   int64
	maxQueue int64
	mu       sync.Mutex
}

var errSaturated = errors.New("server: admission queue full")

// acquire claims an execution slot, waiting (bounded by the queue depth
// and the request's context) when all slots are busy. It returns
// errSaturated when the wait queue is full.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	g.mu.Lock()
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		return errSaturated
	}
	g.queued++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
	}()
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) release() { <-g.sem }

// testHookAdmitted, when non-nil, runs inside every admitted request
// just before its handler. Tests use it to hold requests in flight
// deterministically; nil in production.
var testHookAdmitted func(kind string)

// lifecycle wraps a handler with the full request lifecycle: drain
// check, admission gate, per-endpoint deadline, in-flight accounting,
// and latency/outcome metrics.
func (s *Server) lifecycle(kind string, timeout time.Duration, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.isDraining() {
			writeErr(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if s.gate != nil {
			if err := s.gate.acquire(r.Context()); err != nil {
				if errors.Is(err, errSaturated) {
					s.met.rejected.Inc()
					w.Header().Set("Retry-After", "1")
					writeErr(w, http.StatusTooManyRequests, "server saturated: %v", err)
				} else {
					writeErr(w, StatusClientClosedRequest, "client gone while queued: %v", err)
				}
				return
			}
			defer s.gate.release()
		}
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		if testHookAdmitted != nil {
			testHookAdmitted(kind)
		}

		ctx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		start := time.Now()
		code := h(ctx, w, r)
		elapsed := time.Since(start).Seconds()
		switch kind {
		case "query":
			s.met.queryLatency.Observe(elapsed)
		case "write":
			s.met.writeLatency.Observe(elapsed)
		}
		if code == StatusClientClosedRequest || code == http.StatusGatewayTimeout {
			s.met.canceled.Inc()
		} else if code >= 400 {
			s.met.errors.Inc()
		}
	}
}

// statusFor maps a system error onto an HTTP status code using the core
// package's sentinel errors.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrSourceOutOfRange):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrUnknownProblem), errors.Is(err, core.ErrNoSuchVersion):
		return http.StatusNotFound
	case errors.Is(err, core.ErrCanceled):
		if errors.Is(err, context.DeadlineExceeded) {
			return http.StatusGatewayTimeout
		}
		return StatusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

// edgeJSON is the wire form of one edge.
type edgeJSON struct {
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
	W   uint32 `json:"w"`
}

type batchRequest struct {
	Edges []edgeJSON `json:"edges"`
}

type batchResponse struct {
	Applied         int     `json:"applied"`
	ChangedSources  int     `json:"changed_sources"`
	Version         uint64  `json:"version"`
	StandingSeconds float64 `json:"standing_seconds"`
	// Subscription fan-out of this batch (omitted with no subscribers).
	Subscribers int     `json:"subscribers,omitempty"`
	FramesSent  int     `json:"frames_sent,omitempty"`
	FanoutSecs  float64 `json:"fanout_seconds,omitempty"`
}

type statsResponse struct {
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	Version  uint64 `json:"version"`
	Directed bool   `json:"directed"`
	// Shards is the number of partitioned cores serving this system (1
	// when unsharded); with shards > 1 the metrics map carries the
	// tripoline_shard_* counters and the mirror/cache figures aggregate
	// over all shards.
	Shards   int            `json:"shards"`
	Problems []string       `json:"problems"`
	Metrics  map[string]any `json:"metrics"`
	// Cache summarizes the Δ-result cache (all zero when disabled);
	// Subscribers is the live subscription count.
	Cache       core.CacheMetrics `json:"cache"`
	Subscribers int               `json:"subscribers"`
}

type queryResponse struct {
	Problem     string  `json:"problem"`
	Source      uint32  `json:"source"`
	Incremental bool    `json:"incremental"`
	Seconds     float64 `json:"seconds"`
	Activations int64   `json:"activations"`
	// Version is the snapshot version the result is valid for — under
	// concurrent writes a client needs it to know *which* graph it got an
	// answer about (and, with history enabled, to audit the answer via
	// /query_at later).
	Version uint64   `json:"version"`
	Values  []uint64 `json:"values"`
	Counts  []uint64 `json:"counts,omitempty"`
	Radius  uint64   `json:"radius,omitempty"`
}

// errEnvelope is the unified v1 error body: every non-2xx response from
// a /v1/* endpoint carries exactly this shape, with a small closed set
// of machine-readable codes so clients switch on code, never on message
// text or HTTP nuance.
type errEnvelope struct {
	Error errDetail `json:"error"`
}

type errDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errCodeFor maps an HTTP status onto the envelope's code vocabulary.
func errCodeFor(status int) string {
	switch status {
	case http.StatusNotFound:
		return "not_found"
	case http.StatusBadRequest:
		return "bad_request"
	case StatusClientClosedRequest:
		return "canceled"
	case http.StatusGatewayTimeout:
		return "deadline"
	case http.StatusServiceUnavailable:
		return "draining"
	case http.StatusTooManyRequests:
		return "overloaded"
	default:
		return "internal"
	}
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errEnvelope{Error: errDetail{
		Code:    errCodeFor(code),
		Message: fmt.Sprintf(format, args...),
	}})
	return code
}

func writeJSON(w http.ResponseWriter, v any) int {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
	return http.StatusOK
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, statsResponse{
		Vertices:    s.sys.NumVertices(),
		Edges:       s.sys.NumEdges(),
		Version:     s.sys.Version(),
		Directed:    s.sys.Directed(),
		Shards:      s.shards,
		Problems:    s.sys.Enabled(),
		Metrics:     s.met.reg.Snapshot(),
		Cache:       s.sys.ResultCacheMetrics(),
		Subscribers: s.sys.Subscribers(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.met.reg.WritePrometheus(w)
}

func (s *Server) handleQuery(ctx context.Context, w http.ResponseWriter, r *http.Request) int {
	problem := r.URL.Query().Get("problem")
	if problem == "" {
		return writeErr(w, http.StatusBadRequest, "missing ?problem")
	}
	srcStr := r.URL.Query().Get("source")
	src, err := strconv.ParseUint(srcStr, 10, 32)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, "bad ?source=%q", srcStr)
	}
	var res *core.QueryResult
	if r.URL.Query().Get("full") != "" {
		s.met.queriesFull.Inc()
		res, err = s.sys.QueryFullCtx(ctx, problem, graph.VertexID(src))
	} else {
		s.met.queries.Inc()
		res, err = s.sys.QueryCtx(ctx, problem, graph.VertexID(src))
	}
	if err != nil {
		return writeErr(w, statusFor(err), "%v", err)
	}
	if res.Incremental {
		s.met.queriesIncremental.Inc()
	}
	s.met.observeEngine(res.Stats)
	return writeQueryResult(w, res)
}

// writeQueryResult writes the standard query body plus the
// X-Tripoline-Version header (always matching the JSON version field, so
// version-aware clients need not parse the body).
func writeQueryResult(w http.ResponseWriter, res *core.QueryResult) int {
	w.Header().Set("X-Tripoline-Version", strconv.FormatUint(res.Version, 10))
	return writeJSON(w, queryResponse{
		Problem:     res.Problem,
		Source:      uint32(res.Source),
		Incremental: res.Incremental,
		Seconds:     res.Elapsed.Seconds(),
		Activations: res.Stats.Activations,
		Version:     res.Version,
		Values:      res.Values,
		Counts:      res.Counts,
		Radius:      res.Radius,
	})
}

// cached wraps a query endpoint with its Δ-result-cache fast path: on a
// hit the request bypasses the admission gate entirely — the whole point
// of caching at user scale is that a hit costs an O(answer) copy, not an
// evaluation slot. Draining still refuses the request (a drained server
// serves nothing), and a miss falls through to the gated handler.
func (s *Server) cached(try func(w http.ResponseWriter, r *http.Request) bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.isDraining() && try(w, r) {
			return
		}
		h(w, r)
	}
}

// tryCachedQuery serves /v1/query from the cache when the request's
// freshness policy allows it: by default only an entry at the current
// version hits; ?stale=ok accepts any retained version at or above
// ?min_version. full=1 always bypasses the cache. Cached responses set
// X-Tripoline-Cache: hit and X-Tripoline-Stale-Batches (the number of
// graph-changing batches applied since the answer's version).
func (s *Server) tryCachedQuery(w http.ResponseWriter, r *http.Request) bool {
	q := r.URL.Query()
	if q.Get("full") != "" {
		return false
	}
	problem := q.Get("problem")
	src, err := strconv.ParseUint(q.Get("source"), 10, 32)
	if problem == "" || err != nil {
		return false // let the real handler produce the 400
	}
	staleOK := q.Get("stale") == "ok"
	var minVersion uint64
	if mv := q.Get("min_version"); mv != "" {
		minVersion, err = strconv.ParseUint(mv, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad ?min_version=%q", mv)
			return true
		}
	}
	res, stale, ok := s.sys.CachedQuery(problem, graph.VertexID(src), minVersion, staleOK)
	if !ok {
		return false
	}
	s.met.queries.Inc()
	s.met.cacheHits.Inc()
	if stale > 0 {
		s.met.cacheStaleServed.Inc()
	}
	w.Header().Set("X-Tripoline-Cache", "hit")
	w.Header().Set("X-Tripoline-Stale-Batches", strconv.FormatUint(stale, 10))
	writeQueryResult(w, res)
	return true
}

// tryCachedQueryAt serves /v1/queryat from the cache when an entry's
// version matches the requested one exactly — an answer at version v is
// exact at v forever, so this skips both the gate and the historical
// re-evaluation.
func (s *Server) tryCachedQueryAt(w http.ResponseWriter, r *http.Request) bool {
	q := r.URL.Query()
	problem := q.Get("problem")
	src, errSrc := strconv.ParseUint(q.Get("source"), 10, 32)
	version, errVer := strconv.ParseUint(q.Get("version"), 10, 64)
	if problem == "" || errSrc != nil || errVer != nil {
		return false
	}
	res, ok := s.sys.CachedQueryAt(problem, graph.VertexID(src), version)
	if !ok {
		return false
	}
	s.met.queries.Inc()
	s.met.cacheHits.Inc()
	w.Header().Set("X-Tripoline-Cache", "hit")
	w.Header().Set("X-Tripoline-Stale-Batches", "0")
	writeQueryResult(w, res)
	return true
}

// handleQueryAt answers against a retained historical snapshot; the
// system must have history enabled (core.System.EnableHistory).
func (s *Server) handleQueryAt(ctx context.Context, w http.ResponseWriter, r *http.Request) int {
	problem := r.URL.Query().Get("problem")
	srcStr := r.URL.Query().Get("source")
	verStr := r.URL.Query().Get("version")
	src, err := strconv.ParseUint(srcStr, 10, 32)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, "bad ?source=%q", srcStr)
	}
	version, err := strconv.ParseUint(verStr, 10, 64)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, "bad ?version=%q", verStr)
	}
	s.met.queries.Inc()
	res, err := s.sys.QueryAtCtx(ctx, version, problem, graph.VertexID(src))
	if err != nil {
		return writeErr(w, statusFor(err), "%v", err)
	}
	s.met.observeEngine(res.Stats)
	return writeQueryResult(w, res)
}

type queryManyRequest struct {
	Problem string   `json:"problem"`
	Sources []uint32 `json:"sources"`
}

type queryManyResponse struct {
	Problem string   `json:"problem"`
	Sources []uint32 `json:"sources"`
	Width   int      `json:"width"`
	Version uint64   `json:"version"`
	Seconds float64  `json:"seconds"`
	// Values is the stride-Width array: Values[x*Width+j] is query j's
	// value at vertex x.
	Values []uint64 `json:"values"`
}

func (s *Server) handleQueryMany(ctx context.Context, w http.ResponseWriter, r *http.Request) int {
	var req queryManyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
	}
	sources := make([]graph.VertexID, len(req.Sources))
	for i, u := range req.Sources {
		sources[i] = graph.VertexID(u)
	}
	s.met.queries.Add(int64(len(sources)))
	res, err := s.sys.QueryManyCtx(ctx, req.Problem, sources)
	if err != nil {
		return writeErr(w, statusFor(err), "%v", err)
	}
	s.met.queriesIncremental.Add(int64(len(sources)))
	s.met.observeEngine(res.Stats)
	// Same version contract as /v1/query: the snapshot the whole batch
	// evaluated against, in both the header and the body.
	w.Header().Set("X-Tripoline-Version", strconv.FormatUint(res.Version, 10))
	return writeJSON(w, queryManyResponse{
		Problem: res.Problem,
		Sources: req.Sources,
		Width:   res.Width,
		Version: res.Version,
		Seconds: res.Elapsed.Seconds(),
		Values:  res.Values,
	})
}

func (s *Server) decodeEdges(w http.ResponseWriter, r *http.Request) ([]graph.Edge, bool) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return nil, false
	}
	if len(req.Edges) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return nil, false
	}
	edges := make([]graph.Edge, len(req.Edges))
	for i, e := range req.Edges {
		if e.W == 0 {
			e.W = 1
		}
		edges[i] = graph.Edge{Src: e.Src, Dst: e.Dst, W: e.W}
	}
	return edges, true
}

func (s *Server) handleBatch(ctx context.Context, w http.ResponseWriter, r *http.Request) int {
	edges, ok := s.decodeEdges(w, r)
	if !ok {
		return http.StatusBadRequest
	}
	s.writeMu.Lock()
	rep, err := s.sys.ApplyBatchCtx(ctx, edges)
	s.writeMu.Unlock()
	if err != nil {
		return writeErr(w, statusFor(err), "%v", err)
	}
	s.met.batches.Inc()
	s.met.batchEdges.Add(int64(rep.BatchEdges))
	s.met.observeFanout(rep)
	return writeJSON(w, batchResponse{
		Applied:         rep.BatchEdges,
		ChangedSources:  rep.ChangedSources,
		Version:         rep.Version,
		StandingSeconds: rep.StandingElapsed.Seconds(),
		Subscribers:     rep.Subscribers,
		FramesSent:      rep.FramesSent,
		FanoutSecs:      rep.RefreshElapsed.Seconds(),
	})
}

func (s *Server) handleDelete(ctx context.Context, w http.ResponseWriter, r *http.Request) int {
	edges, ok := s.decodeEdges(w, r)
	if !ok {
		return http.StatusBadRequest
	}
	s.writeMu.Lock()
	rep, err := s.sys.ApplyDeletionsCtx(ctx, edges)
	s.writeMu.Unlock()
	if err != nil {
		return writeErr(w, statusFor(err), "%v", err)
	}
	s.met.deletes.Inc()
	s.met.batchEdges.Add(int64(rep.BatchEdges))
	s.met.observeFanout(rep)
	return writeJSON(w, batchResponse{
		Applied:         rep.BatchEdges,
		ChangedSources:  rep.ChangedSources,
		Version:         rep.Version,
		StandingSeconds: rep.StandingElapsed.Seconds(),
		Subscribers:     rep.Subscribers,
		FramesSent:      rep.FramesSent,
		FanoutSecs:      rep.RefreshElapsed.Seconds(),
	})
}
