package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tripoline/internal/core"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/server"
	"tripoline/internal/streamgraph"
)

// newServingStack builds a system with the Δ-result cache enabled and
// returns the pieces the serving tests need direct access to.
func newServingStack(t *testing.T, problems ...string) (*httptest.Server, *server.Server, *core.System) {
	t.Helper()
	edges := gen.Uniform(100, 900, 8, 201)
	g := streamgraph.New(100, false)
	g.InsertEdges(edges)
	sys := core.NewSystem(g, 4)
	sys.EnableResultCache(64)
	for _, p := range problems {
		if err := sys.Enable(p); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(sys, g)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, sys
}

// readEvent parses one SSE frame (event name + data payload).
func readEvent(t *testing.T, br *bufio.Reader) (string, []byte) {
	t.Helper()
	var name string
	var data []byte
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if name != "" || data != nil {
				return name, data
			}
			continue
		}
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			name = v
		}
		if v, ok := strings.CutPrefix(line, "data: "); ok {
			data = []byte(v)
		}
	}
}

// TestSubscribeSSE is the subscribe smoke: connect, apply a batch,
// assert a delta frame arrives at the batch's version.
func TestSubscribeSSE(t *testing.T) {
	ts, _, _ := newServingStack(t, "BFS")
	resp, err := http.Get(ts.URL + "/v1/subscribe?problem=BFS&src=7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	name, data := readEvent(t, br)
	var snap core.ResultFrame
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if name != "snapshot" || snap.Kind != "snapshot" || len(snap.Values) == 0 {
		t.Fatalf("first frame = %s %+v", name, snap)
	}

	var rep struct {
		Version     uint64 `json:"version"`
		Subscribers int    `json:"subscribers"`
		FramesSent  int    `json:"frames_sent"`
	}
	postJSON(t, ts.URL+"/v1/batch",
		map[string]any{"edges": []map[string]any{{"src": 7, "dst": 93, "w": 1}}}, &rep)
	if rep.Subscribers != 1 || rep.FramesSent != 1 {
		t.Fatalf("batch fan-out %+v", rep)
	}

	name, data = readEvent(t, br)
	var delta core.ResultFrame
	if err := json.Unmarshal(data, &delta); err != nil {
		t.Fatal(err)
	}
	if name != "delta" || delta.Kind != "delta" {
		t.Fatalf("second frame = %s %+v", name, delta)
	}
	if delta.Version != rep.Version {
		t.Fatalf("delta at version %d, batch published %d", delta.Version, rep.Version)
	}
}

// TestSubscribeLongPoll: mode=poll blocks until the answer changes and
// returns the delta as a plain JSON body.
func TestSubscribeLongPoll(t *testing.T) {
	ts, _, _ := newServingStack(t, "BFS")
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		var rep map[string]any
		postJSON(t, ts.URL+"/v1/batch",
			map[string]any{"edges": []map[string]any{{"src": 3, "dst": 91, "w": 1}}}, &rep)
	}()
	resp, err := http.Get(ts.URL + "/v1/subscribe?problem=BFS&src=3&mode=poll&wait=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-done
	if resp.StatusCode != 200 {
		t.Fatalf("poll status %d", resp.StatusCode)
	}
	var frame core.ResultFrame
	if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
		t.Fatal(err)
	}
	if frame.Kind != "delta" {
		t.Fatalf("poll frame kind %q", frame.Kind)
	}
	if resp.Header.Get("X-Tripoline-Version") == "" {
		t.Fatal("poll response missing version header")
	}
}

// TestCachedQueryServing: second identical query is served from the
// cache with the hit header; stale policy and min_version behave as
// documented.
func TestCachedQueryServing(t *testing.T) {
	ts, _, _ := newServingStack(t, "BFS")
	get := func(path string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	// Populate, then hit.
	r1, out1 := get("/v1/query?problem=BFS&source=9")
	if r1.Header.Get("X-Tripoline-Cache") != "" {
		t.Fatal("first query claimed a cache hit")
	}
	if r1.Header.Get("X-Tripoline-Version") == "" {
		t.Fatal("query response missing version header")
	}
	r2, out2 := get("/v1/query?problem=BFS&source=9")
	if r2.Header.Get("X-Tripoline-Cache") != "hit" {
		t.Fatal("second query not served from cache")
	}
	if r2.Header.Get("X-Tripoline-Stale-Batches") != "0" {
		t.Fatalf("fresh hit stale batches %q", r2.Header.Get("X-Tripoline-Stale-Batches"))
	}
	if out1["version"] != out2["version"] {
		t.Fatal("cached version differs")
	}

	// A graph-changing batch makes the entry stale.
	var rep struct {
		Version uint64 `json:"version"`
	}
	postJSON(t, ts.URL+"/v1/batch",
		map[string]any{"edges": []map[string]any{{"src": 9, "dst": 55, "w": 1}}}, &rep)

	r3, _ := get("/v1/query?problem=BFS&source=9&stale=ok")
	if r3.Header.Get("X-Tripoline-Cache") != "hit" {
		t.Fatal("stale=ok did not serve the cached answer")
	}
	if r3.Header.Get("X-Tripoline-Stale-Batches") != "1" {
		t.Fatalf("stale batches %q, want 1", r3.Header.Get("X-Tripoline-Stale-Batches"))
	}
	// min_version above the entry forces re-evaluation even with stale=ok.
	r4, out4 := get("/v1/query?problem=BFS&source=9&stale=ok&min_version=" +
		strconv.FormatUint(rep.Version, 10))
	if r4.Header.Get("X-Tripoline-Cache") != "" {
		t.Fatal("min_version ignored by cache path")
	}
	if uint64(out4["version"].(float64)) != rep.Version {
		t.Fatalf("re-evaluated at %v, want %d", out4["version"], rep.Version)
	}
	// The re-evaluation refreshed the entry: strict serving hits again.
	r5, _ := get("/v1/query?problem=BFS&source=9")
	if r5.Header.Get("X-Tripoline-Cache") != "hit" {
		t.Fatal("refreshed entry not served")
	}

	// Cache activity is visible under /v1/stats.
	var stats struct {
		Cache core.CacheMetrics `json:"cache"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Cache.Hits < 3 || stats.Cache.StaleServed < 1 {
		t.Fatalf("stats cache section %+v", stats.Cache)
	}
}

// TestSubscribeDrainGoodbye: Drain pushes a goodbye event to open
// streams and completes.
func TestSubscribeDrainGoodbye(t *testing.T) {
	ts, srv, _ := newServingStack(t, "BFS")
	resp, err := http.Get(ts.URL + "/v1/subscribe?problem=BFS&src=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	readEvent(t, br) // snapshot

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	name, _ := readEvent(t, br)
	if name != "goodbye" {
		t.Fatalf("drain pushed %q, want goodbye", name)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	// New subscriptions are refused after drain.
	resp2, err := http.Get(ts.URL + "/v1/subscribe?problem=BFS&src=2")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain subscribe status %d", resp2.StatusCode)
	}
}

// TestSubscriberChurnDuringDrain exercises concurrent subscribe /
// unsubscribe / batch traffic racing Drain — the -race companion for the
// stream shutdown path.
func TestSubscriberChurnDuringDrain(t *testing.T) {
	ts, srv, sys := newServingStack(t, "BFS")
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// HTTP subscribers connecting, reading one frame, disconnecting.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/subscribe?problem=BFS&src=" + strconv.Itoa(src))
				if err != nil {
					return
				}
				if resp.StatusCode == 200 {
					br := bufio.NewReader(resp.Body)
					_, _ = br.ReadString('\n')
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					return
				}
			}
		}(i + 1)
	}
	// Direct library subscribers churning against the same system.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := sys.Subscribe("BFS", graph.VertexID(src), 2)
				if err != nil {
					return
				}
				sys.Unsubscribe(sub)
			}
		}(i + 10)
	}
	// A writer advancing versions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sys.ApplyBatch([]graph.Edge{{Src: uint32(i % 90), Dst: uint32((i + 7) % 90), W: 1}})
		}
	}()

	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Drain(ctx)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("drain under churn: %v", err)
	}
}
