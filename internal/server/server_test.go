package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"tripoline/internal/core"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/server"
	"tripoline/internal/streamgraph"
)

func newTestServer(t *testing.T, problems ...string) (*httptest.Server, *streamgraph.Graph) {
	t.Helper()
	edges := gen.Uniform(100, 900, 8, 201)
	g := streamgraph.New(100, false)
	g.InsertEdges(edges)
	sys := core.NewSystem(g, 4)
	for _, p := range problems {
		if err := sys.Enable(p); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(server.New(sys, g))
	t.Cleanup(ts.Close)
	return ts, g
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestStatsEndpoint(t *testing.T) {
	ts, g := newTestServer(t, "SSSP", "BFS")
	var stats struct {
		Vertices int      `json:"vertices"`
		Edges    int64    `json:"edges"`
		Problems []string `json:"problems"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("status %d", code)
	}
	if stats.Vertices != 100 || stats.Edges != g.Acquire().NumEdges() {
		t.Fatalf("stats %+v", stats)
	}
	if len(stats.Problems) != 2 {
		t.Fatalf("problems %v", stats.Problems)
	}
}

func TestQueryEndpointMatchesFull(t *testing.T) {
	ts, _ := newTestServer(t, "SSWP")
	var inc, full struct {
		Incremental bool     `json:"incremental"`
		Values      []uint64 `json:"values"`
		Activations int64    `json:"activations"`
	}
	if code := getJSON(t, ts.URL+"/v1/query?problem=SSWP&source=7", &inc); code != 200 {
		t.Fatalf("status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/query?problem=SSWP&source=7&full=1", &full); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !inc.Incremental || full.Incremental {
		t.Fatal("incremental flags wrong")
	}
	if len(inc.Values) != 100 {
		t.Fatalf("values len %d", len(inc.Values))
	}
	for i := range inc.Values {
		if inc.Values[i] != full.Values[i] {
			t.Fatalf("Δ/full differ at %d", i)
		}
	}
	if inc.Activations >= full.Activations {
		t.Fatalf("Δ activations %d not below full %d", inc.Activations, full.Activations)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts, g := newTestServer(t, "BFS")
	before := g.Acquire().NumEdges()
	var rep struct {
		Applied        int    `json:"applied"`
		ChangedSources int    `json:"changed_sources"`
		Version        uint64 `json:"version"`
	}
	body := map[string]any{"edges": []map[string]any{
		{"src": 0, "dst": 99, "w": 5},
		{"src": 1, "dst": 98}, // weight defaults to 1
	}}
	if code := postJSON(t, ts.URL+"/v1/batch", body, &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.Applied != 2 || rep.Version != 2 {
		t.Fatalf("rep %+v", rep)
	}
	if g.Acquire().NumEdges() <= before {
		t.Fatal("edges not inserted")
	}
	if w, ok := g.Acquire().HasEdge(1, 98); !ok || w != 1 {
		t.Fatal("defaulted weight wrong")
	}
}

func TestDeleteEndpoint(t *testing.T) {
	ts, g := newTestServer(t, "BFS")
	// Insert a known edge, then delete it over the API.
	var rep map[string]any
	postJSON(t, ts.URL+"/v1/batch",
		map[string]any{"edges": []map[string]any{{"src": 3, "dst": 77, "w": 2}}}, &rep)
	if _, ok := g.Acquire().HasEdge(3, 77); !ok {
		t.Fatal("setup edge missing")
	}
	postJSON(t, ts.URL+"/v1/delete",
		map[string]any{"edges": []map[string]any{{"src": 3, "dst": 77, "w": 2}}}, &rep)
	if _, ok := g.Acquire().HasEdge(3, 77); ok {
		t.Fatal("edge survived delete endpoint")
	}
}

func TestErrorResponses(t *testing.T) {
	ts, _ := newTestServer(t, "BFS")
	cases := []struct {
		method, path string
		body         any
		wantCode     int
		wantErrCode  string
	}{
		{"GET", "/v1/query?problem=BFS", nil, 400, "bad_request"},             // no source
		{"GET", "/v1/query?problem=BFS&source=xyz", nil, 400, "bad_request"},  // bad source
		{"GET", "/v1/query?problem=BFS&source=5000", nil, 400, "bad_request"}, // out of range
		{"GET", "/v1/query?problem=SSSP&source=1", nil, 404, "not_found"},     // not enabled
		{"GET", "/v1/query?source=1", nil, 400, "bad_request"},                // no problem
		{"GET", "/v1/queryat?problem=BFS&source=1&version=99", nil, 404, "not_found"},
		{"GET", "/v1/subscribe?problem=BFS", nil, 400, "bad_request"},               // no src
		{"GET", "/v1/subscribe?problem=Nope&src=1", nil, 404, "not_found"},          // not enabled
		{"POST", "/v1/batch", map[string]any{"edges": []any{}}, 400, "bad_request"}, // empty
	}
	for _, c := range cases {
		var out struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		var code int
		if c.method == "GET" {
			code = getJSON(t, ts.URL+c.path, &out)
		} else {
			code = postJSON(t, ts.URL+c.path, c.body, &out)
		}
		if code != c.wantCode {
			t.Fatalf("%s %s: status %d, want %d", c.method, c.path, code, c.wantCode)
		}
		if out.Error.Code != c.wantErrCode {
			t.Fatalf("%s %s: envelope code %q, want %q", c.method, c.path, out.Error.Code, c.wantErrCode)
		}
		if out.Error.Message == "" {
			t.Fatalf("%s %s: envelope has no message", c.method, c.path)
		}
	}
}

func TestQueryAtEndpoint(t *testing.T) {
	// Deterministic path 0-1-2-...-49 so level(49) is known exactly.
	var edges []graph.Edge
	for v := graph.VertexID(0); v < 49; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: v + 1, W: 1})
	}
	g := streamgraph.New(50, false)
	g.InsertEdges(edges)
	sys := core.NewSystem(g, 2)
	if err := sys.Enable("BFS"); err != nil {
		t.Fatal(err)
	}
	sys.EnableHistory(4)
	oldVersion := g.Acquire().Version()
	ts := httptest.NewServer(server.New(sys, g))
	t.Cleanup(ts.Close)

	// Mutate through the API so history records the new version.
	var rep map[string]any
	postJSON(t, ts.URL+"/v1/batch",
		map[string]any{"edges": []map[string]any{{"src": 0, "dst": 49, "w": 1}}}, &rep)

	var old, now struct {
		Values []uint64 `json:"values"`
	}
	url := fmt.Sprintf("%s/v1/queryat?problem=BFS&source=0&version=%d", ts.URL, oldVersion)
	if code := getJSON(t, url, &old); code != 200 {
		t.Fatalf("status %d", code)
	}
	getJSON(t, ts.URL+"/v1/query?problem=BFS&source=0", &now)
	if now.Values[49] != 1 {
		t.Fatalf("live level(49)=%d, want 1 via new edge", now.Values[49])
	}
	if old.Values[49] != 49 {
		t.Fatalf("historical level(49)=%d, want 49 along the path", old.Values[49])
	}

	// Error paths.
	var errOut map[string]any
	if code := getJSON(t, ts.URL+"/v1/queryat?problem=BFS&source=0&version=999", &errOut); code != 404 {
		t.Fatalf("unknown version: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/queryat?problem=BFS&source=x&version=1", &errOut); code != 400 {
		t.Fatalf("bad source: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/queryat?problem=BFS&source=0&version=x", &errOut); code != 400 {
		t.Fatalf("bad version: status %d", code)
	}
}

func TestQueryManyEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, "SSSP")
	var out struct {
		Width  int      `json:"width"`
		Values []uint64 `json:"values"`
	}
	body := map[string]any{"problem": "SSSP", "sources": []uint32{3, 9}}
	if code := postJSON(t, ts.URL+"/v1/querymany", body, &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Width != 2 || len(out.Values) != 200 {
		t.Fatalf("width=%d values=%d", out.Width, len(out.Values))
	}
	// Slot values match single-query endpoint results.
	var single struct {
		Values []uint64 `json:"values"`
	}
	getJSON(t, ts.URL+"/v1/query?problem=SSSP&source=3", &single)
	for v := 0; v < 100; v++ {
		if out.Values[v*2] != single.Values[v] {
			t.Fatalf("batched slot 0 differs at %d", v)
		}
	}
	// Errors surface with precise status codes: bad request shapes are
	// 400, unknown problems are 404 (core.ErrUnknownProblem).
	var errOut map[string]any
	if code := postJSON(t, ts.URL+"/v1/querymany",
		map[string]any{"problem": "SSSP", "sources": []uint32{}}, &errOut); code != 400 {
		t.Fatalf("empty sources: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/querymany",
		map[string]any{"problem": "Nope", "sources": []uint32{1}}, &errOut); code != 404 {
		t.Fatalf("unknown problem: status %d", code)
	}
}

func TestConcurrentClients(t *testing.T) {
	ts, _ := newTestServer(t, "SSSP")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out struct {
				Values []uint64 `json:"values"`
			}
			url := fmt.Sprintf("%s/v1/query?problem=SSSP&source=%d", ts.URL, i%50)
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if len(out.Values) != 100 {
				errs <- fmt.Errorf("short values: %d", len(out.Values))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
