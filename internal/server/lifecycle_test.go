package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tripoline/internal/core"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/metrics"
	"tripoline/internal/server"
	"tripoline/internal/streamgraph"
)

func newLifecycleServer(t *testing.T, opts ...server.Option) (*httptest.Server, *server.Server) {
	t.Helper()
	g := streamgraph.New(100, false)
	g.InsertEdges(gen.Uniform(100, 900, 8, 201))
	sys := core.NewSystem(g, 4)
	if err := sys.Enable("SSSP"); err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, g, opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestAdmissionGateSaturation holds one request in flight on a server
// with maxInFlight=1 and queue depth 0, then asserts a second request is
// refused 429 without waiting.
func TestAdmissionGateSaturation(t *testing.T) {
	ts, _ := newLifecycleServer(t, server.WithMaxInFlight(1, 0))

	hold := make(chan struct{})
	admitted := make(chan struct{}, 1)
	restore := server.SetTestHookAdmitted(func(string) {
		admitted <- struct{}{}
		<-hold
	})
	defer restore()

	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/query?problem=SSSP&source=1")
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-admitted // first request now occupies the only slot

	restore() // overflow request must not block on the hook if admitted
	resp, err := http.Get(ts.URL + "/v1/query?problem=SSSP&source=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// With the slot free the same request succeeds.
	resp, err = http.Get(ts.URL + "/v1/query?problem=SSSP&source=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-saturation request: status %d", resp.StatusCode)
	}
}

// TestAdmissionQueueWaits verifies that a queue slot (depth 1) parks the
// second request until the first releases, rather than rejecting it.
func TestAdmissionQueueWaits(t *testing.T) {
	ts, _ := newLifecycleServer(t, server.WithMaxInFlight(1, 1))

	hold := make(chan struct{})
	admitted := make(chan struct{}, 2)
	restore := server.SetTestHookAdmitted(func(string) {
		admitted <- struct{}{}
		<-hold
	})
	defer restore()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/query?problem=SSSP&source=1")
			if err != nil {
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
		if i == 0 {
			<-admitted // ensure request 0 holds the slot before 1 queues
		}
	}
	// Request 1 is queued; releasing the hook lets both finish. The
	// hooked hold applies to request 1 too, so drain both admissions.
	close(hold)
	<-admitted
	wg.Wait()
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("codes %v, want both 200", codes)
	}
}

// TestQueryDeadline504 runs with an absurdly short server-side query
// timeout against a long path graph (diameter ≈ n, so SSSP needs ~n
// supersteps and the deadline reliably fires mid-convergence) and
// expects 504 Gateway Timeout via engine cancellation.
func TestQueryDeadline504(t *testing.T) {
	if testing.Short() {
		t.Skip("large chain graph in -short mode")
	}
	const n = 150_000
	chain := make([]graph.Edge, n-1)
	for i := range chain {
		chain[i] = graph.Edge{Src: uint32(i), Dst: uint32(i + 1), W: 1}
	}
	g := streamgraph.New(n, false)
	g.InsertEdges(chain)
	sys := core.NewSystem(g, 2)
	if err := sys.Enable("SSSP"); err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, g, server.WithQueryTimeout(time.Millisecond))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// full=1 bypasses the Δ warm start, guaranteeing a from-scratch run
	// long enough for the 1ms deadline to fire.
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/query?problem=SSSP&source=0&full=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %s, want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timed-out query took %v end to end", elapsed)
	}
}

// TestMetricsEndpoint drives a scripted workload and asserts the
// counters and histogram exposed at /v1/metrics (and mirrored into
// /v1/stats) match it.
func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	ts, _ := newLifecycleServer(t, server.WithMetrics(reg))

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/query?problem=SSSP&source=5")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/query?problem=SSSP&source=5&full=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/query?problem=Nope&source=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown problem: status %d", resp.StatusCode)
	}
	var out map[string]any
	if code := postJSON(t, ts.URL+"/v1/batch",
		map[string]any{"edges": []map[string]uint32{{"src": 1, "dst": 99, "w": 3}}}, &out); code != 200 {
		t.Fatalf("batch: status %d (%v)", code, out)
	}

	if got := reg.Snapshot()["tripoline_queries_total"]; got != int64(4) {
		t.Fatalf("queries_total = %v, want 4", got)
	}
	if got := reg.Snapshot()["tripoline_queries_full_total"]; got != int64(1) {
		t.Fatalf("queries_full_total = %v, want 1", got)
	}
	if got := reg.Snapshot()["tripoline_errors_total"]; got != int64(1) {
		t.Fatalf("errors_total = %v, want 1", got)
	}
	if got := reg.Snapshot()["tripoline_batches_total"]; got != int64(1) {
		t.Fatalf("batches_total = %v, want 1", got)
	}
	if got := reg.Snapshot()["tripoline_batch_edges_total"]; got != int64(1) {
		t.Fatalf("batch_edges_total = %v, want 1", got)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE tripoline_queries_total counter",
		"tripoline_queries_total 4",
		"# TYPE tripoline_query_seconds histogram",
		`tripoline_query_seconds_bucket{le="+Inf"} 5`,
		"tripoline_query_seconds_count 5",
		"# TYPE tripoline_inflight gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/v1/metrics missing %q in:\n%s", want, text)
		}
	}

	// The stats endpoint mirrors the same registry as JSON.
	var stats struct {
		Metrics map[string]any `json:"metrics"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if got, ok := stats.Metrics["tripoline_queries_total"].(float64); !ok || got != 4 {
		t.Fatalf("stats metrics queries_total = %v", stats.Metrics["tripoline_queries_total"])
	}
}

// TestDrain verifies graceful shutdown: draining refuses new requests
// with 503 but lets in-flight ones finish.
func TestDrain(t *testing.T) {
	ts, srv := newLifecycleServer(t)

	hold := make(chan struct{})
	admitted := make(chan struct{}, 1)
	restore := server.SetTestHookAdmitted(func(string) {
		admitted <- struct{}{}
		<-hold
	})
	defer restore()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/query?problem=SSSP&source=1")
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-admitted

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()
	// Draining refuses new work. Drain was just signaled; wait for the
	// flag (it is set synchronously before Drain blocks, but give the
	// goroutine a moment to run).
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/query?problem=SSSP&source=2")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request during drain: status %d, want 503", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}

	restore() // let the held request's hook no-op for any retries
	close(hold)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", code)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}
