package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// postQueryMany issues /v1/querymany and returns the response header and
// decoded body — the version-contract tests need both.
func postQueryMany(t *testing.T, url string) (http.Header, struct {
	Version uint64   `json:"version"`
	Width   int      `json:"width"`
	Values  []uint64 `json:"values"`
}) {
	t.Helper()
	var out struct {
		Version uint64   `json:"version"`
		Width   int      `json:"width"`
		Values  []uint64 `json:"values"`
	}
	b, err := json.Marshal(map[string]any{"problem": "SSSP", "sources": []uint32{3, 9}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/querymany", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.Header, out
}

// queryVersion reads the single-query endpoint's version header — the
// reference every other query-family endpoint must agree with.
func queryVersion(t *testing.T, url string) uint64 {
	t.Helper()
	resp, err := http.Get(url + "/v1/query?problem=SSSP&source=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	v, err := strconv.ParseUint(resp.Header.Get("X-Tripoline-Version"), 10, 64)
	if err != nil {
		t.Fatalf("bad X-Tripoline-Version %q: %v", resp.Header.Get("X-Tripoline-Version"), err)
	}
	return v
}

// assertQueryManyVersion is the repro for the loadgen-found contract
// hole: /v1/querymany used to drop MultiResult.Version entirely — no
// body field, no X-Tripoline-Version header — so subscribers could not
// resume from a batched read the way they can from every other query
// endpoint. Both carriers must now be present and agree with /v1/query.
func assertQueryManyVersion(t *testing.T, ts *httptest.Server) {
	t.Helper()
	want := queryVersion(t, ts.URL)
	hdr, out := postQueryMany(t, ts.URL)
	hv, err := strconv.ParseUint(hdr.Get("X-Tripoline-Version"), 10, 64)
	if err != nil {
		t.Fatalf("querymany X-Tripoline-Version %q: %v", hdr.Get("X-Tripoline-Version"), err)
	}
	if hv != want {
		t.Fatalf("querymany header version %d, /v1/query reports %d", hv, want)
	}
	if out.Version != want {
		t.Fatalf("querymany body version %d, /v1/query reports %d", out.Version, want)
	}
}

func TestQueryManyVersionContract(t *testing.T) {
	ts, _ := newTestServer(t, "SSSP")
	assertQueryManyVersion(t, ts)
}

func TestQueryManyVersionContractSharded(t *testing.T) {
	ts, _ := newShardedTestServer(t, 4, "SSSP")
	assertQueryManyVersion(t, ts)
}

// TestQueryManyVersionAdvances pins that the reported version tracks
// writes: after a batch the querymany version must move with it.
func TestQueryManyVersionAdvances(t *testing.T) {
	ts, _ := newTestServer(t, "SSSP")
	_, before := postQueryMany(t, ts.URL)
	var br struct {
		Version uint64 `json:"version"`
	}
	body := map[string]any{"edges": []map[string]any{{"src": 1, "dst": 2, "w": 3}}}
	if code := postJSON(t, ts.URL+"/v1/batch", body, &br); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	_, after := postQueryMany(t, ts.URL)
	if after.Version <= before.Version {
		t.Fatalf("version did not advance across a batch: %d -> %d", before.Version, after.Version)
	}
	if after.Version != br.Version {
		t.Fatalf("querymany version %d, batch reported %d", after.Version, br.Version)
	}
}
