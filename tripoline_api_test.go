package tripoline_test

import (
	"testing"

	"tripoline"
	"tripoline/internal/gen"
)

// ringEdges returns a weighted ring over n vertices.
func ringEdges(n int, w tripoline.Weight) []tripoline.Edge {
	edges := make([]tripoline.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = tripoline.Edge{
			Src: tripoline.VertexID(i),
			Dst: tripoline.VertexID((i + 1) % n),
			W:   w,
		}
	}
	return edges
}

func TestFacadeEndToEnd(t *testing.T) {
	g := tripoline.NewGraph(16, tripoline.Undirected)
	snap, changed := g.InsertEdges(ringEdges(16, 3))
	if snap.NumEdges() != 32 { // mirrored
		t.Fatalf("m=%d", snap.NumEdges())
	}
	if len(changed) != 16 {
		t.Fatalf("changed=%d", len(changed))
	}

	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(2))
	if err := sys.Enable("SSSP"); err != nil {
		t.Fatal(err)
	}
	if got := sys.Enabled(); len(got) != 1 || got[0] != "SSSP" {
		t.Fatalf("Enabled=%v", got)
	}
	if sys.Graph() != g {
		t.Fatal("Graph() identity lost")
	}

	rep := sys.ApplyBatch([]tripoline.Edge{{Src: 0, Dst: 8, W: 1}})
	if rep.BatchEdges != 1 || rep.ChangedSources != 2 {
		t.Fatalf("report %+v", rep)
	}

	inc, err := sys.Query("SSSP", 5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sys.QueryFull("SSSP", 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := range full.Values {
		if inc.Values[v] != full.Values[v] {
			t.Fatalf("Δ/full differ at %d", v)
		}
	}
	// Ring of 16 with the 0–8 chord: dist(5→8) = 3 hops × weight 3 = 9.
	if full.Values[8] != 9 {
		t.Fatalf("dist(5,8)=%d, want 9", full.Values[8])
	}
	// dist(5→0): around = 5×3=15, or via 8: 9+1=10.
	if full.Values[0] != 10 {
		t.Fatalf("dist(5,0)=%d, want 10 via the chord", full.Values[0])
	}

	d, err := sys.StandingMaintainTime("SSSP")
	if err != nil || d <= 0 {
		t.Fatalf("maintain time %v err %v", d, err)
	}
}

func TestFacadeOnGeneratedGraph(t *testing.T) {
	cfg := gen.Config{Name: "t", LogN: 10, AvgDegree: 8, Directed: true, Seed: 3}
	edges := gen.RMAT(cfg)
	g := tripoline.NewGraph(cfg.N(), tripoline.Directed)
	g.InsertEdges(edges[:len(edges)/2])
	sys := tripoline.NewSystem(g)
	for _, p := range []string{"BFS", "SSR"} {
		if err := sys.Enable(p); err != nil {
			t.Fatal(err)
		}
	}
	sys.ApplyBatch(edges[len(edges)/2:])
	for _, p := range []string{"BFS", "SSR"} {
		inc, err := sys.Query(p, 17)
		if err != nil {
			t.Fatal(err)
		}
		full, err := sys.QueryFull(p, 17)
		if err != nil {
			t.Fatal(err)
		}
		for v := range full.Values {
			if inc.Values[v] != full.Values[v] {
				t.Fatalf("%s Δ/full differ at %d", p, v)
			}
		}
		if !inc.Incremental {
			t.Fatal("incremental flag not set")
		}
	}
}

// leastHops is a custom problem for the EnableProblem path: plain hop
// counts (BFS by another name, proving arbitrary Problem values plug in).
type leastHops struct{}

func (leastHops) Name() string        { return "LeastHops" }
func (leastHops) InitValue() uint64   { return ^uint64(0) }
func (leastHops) SourceValue() uint64 { return 0 }
func (leastHops) Relax(v uint64, _ tripoline.Weight) (uint64, bool) {
	if v == ^uint64(0) {
		return 0, false
	}
	return v + 1, true
}
func (leastHops) Better(a, b uint64) bool { return a < b }
func (leastHops) Combine(a, b uint64) uint64 {
	if a == ^uint64(0) || b == ^uint64(0) {
		return ^uint64(0)
	}
	return a + b
}

func TestFacadeCustomProblem(t *testing.T) {
	g := tripoline.NewGraph(32, tripoline.Undirected)
	g.InsertEdges(ringEdges(32, 7))
	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(2))
	if err := sys.EnableProblem(leastHops{}); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableProblem(leastHops{}); err == nil {
		t.Fatal("duplicate custom problem accepted")
	}
	inc, err := sys.Query("LeastHops", 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sys.QueryFull("LeastHops", 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range full.Values {
		if inc.Values[v] != full.Values[v] {
			t.Fatalf("custom problem Δ/full differ at %d", v)
		}
	}
	// Ring of 32: the farthest vertex is 16 hops away.
	if full.Values[(3+16)%32] != 16 {
		t.Fatalf("hops=%d, want 16", full.Values[(3+16)%32])
	}
}

func TestFacadeErrors(t *testing.T) {
	g := tripoline.NewGraph(4, tripoline.Directed)
	sys := tripoline.NewSystem(g)
	if _, err := sys.Query("SSSP", 0); err == nil {
		t.Fatal("query before Enable accepted")
	}
	if err := sys.Enable("Bogus"); err == nil {
		t.Fatal("bogus problem accepted")
	}
}

func TestFacadeHistoryAndReselect(t *testing.T) {
	g := tripoline.NewGraph(8, tripoline.Undirected)
	g.InsertEdges(ringEdges(8, 1))
	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(2))
	if err := sys.Enable("BFS"); err != nil {
		t.Fatal(err)
	}
	sys.EnableHistory(4)
	v0 := g.Acquire().Version()
	sys.RecordQueries(true)

	sys.ApplyBatch([]tripoline.Edge{{Src: 0, Dst: 4, W: 1}})
	if len(sys.HistoryVersions()) != 2 {
		t.Fatalf("versions %v", sys.HistoryVersions())
	}
	// Historical: before the chord, 4 was 4 hops from 0.
	old, err := sys.QueryAt(v0, "BFS", 0)
	if err != nil {
		t.Fatal(err)
	}
	if old.Values[4] != 4 {
		t.Fatalf("historical level(4)=%d, want 4", old.Values[4])
	}
	// Live: the chord makes it 1 hop.
	now, err := sys.Query("BFS", 0)
	if err != nil {
		t.Fatal(err)
	}
	if now.Values[4] != 1 {
		t.Fatalf("live level(4)=%d, want 1", now.Values[4])
	}
	// Reselection with the recorded history keeps answers exact.
	if err := sys.ReselectRoots("BFS"); err != nil {
		t.Fatal(err)
	}
	again, err := sys.Query("BFS", 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range now.Values {
		if again.Values[v] != now.Values[v] {
			t.Fatalf("post-reselect differs at %d", v)
		}
	}
}

func TestFormatValue(t *testing.T) {
	if got := tripoline.FormatValue("SSSP", 7); got != "dist 7" {
		t.Fatalf("FormatValue = %q", got)
	}
	if got := tripoline.FormatValue("SSR", 0); got != "unreachable" {
		t.Fatalf("FormatValue = %q", got)
	}
}

func TestBuiltinProblemsAllEnable(t *testing.T) {
	g := tripoline.NewGraph(32, tripoline.Undirected)
	g.InsertEdges(ringEdges(32, 2))
	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(2))
	names := tripoline.BuiltinProblems()
	if len(names) != 10 {
		t.Fatalf("BuiltinProblems = %v", names)
	}
	for _, p := range names {
		if err := sys.Enable(p); err != nil {
			t.Fatalf("Enable(%s): %v", p, err)
		}
	}
	if got := sys.Enabled(); len(got) != 10 {
		t.Fatalf("Enabled = %v", got)
	}
}

func TestFacadeSnapshotIsolation(t *testing.T) {
	g := tripoline.NewGraph(4, tripoline.Directed)
	before := g.Acquire()
	g.InsertEdges([]tripoline.Edge{{Src: 0, Dst: 1, W: 1}})
	if before.NumEdges() != 0 {
		t.Fatal("acquired snapshot mutated")
	}
	if g.Acquire().NumEdges() != 1 {
		t.Fatal("new snapshot missing edge")
	}
}

// TestFacadeOptions covers the NewSystem option forms of history, query
// recording and the Δ-result cache.
func TestFacadeOptions(t *testing.T) {
	g := tripoline.NewGraph(16, tripoline.Undirected)
	g.InsertEdges(ringEdges(16, 1))
	sys := tripoline.NewSystem(g,
		tripoline.WithStandingQueries(2),
		tripoline.WithHistory(4),
		tripoline.WithQueryRecording(),
		tripoline.WithResultCache(8),
	)
	if err := sys.Enable("BFS"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("BFS", 5)
	if err != nil {
		t.Fatal(err)
	}

	// WithResultCache: the answer is retained and servable.
	cached, stale, ok := sys.CachedQuery("BFS", 5, 0, false)
	if !ok || stale != 0 || cached.Version != res.Version {
		t.Fatalf("cached query ok=%v stale=%d", ok, stale)
	}
	if m := sys.ResultCacheMetrics(); m.Hits != 1 || m.Entries != 1 {
		t.Fatalf("cache metrics %+v", m)
	}

	// WithHistory: versions are recorded for QueryAt.
	sys.ApplyBatch([]tripoline.Edge{{Src: 0, Dst: 8, W: 1}})
	if len(sys.HistoryVersions()) == 0 {
		t.Fatal("WithHistory recorded no versions")
	}
	at, err := sys.QueryAt(res.Version, "BFS", 5)
	if err != nil {
		t.Fatal(err)
	}
	if at.Version != res.Version {
		t.Fatalf("QueryAt version %d, want %d", at.Version, res.Version)
	}

	// WithQueryRecording: ReselectRoots consumes the recorded workload
	// without error (it falls back to topology when the histogram is thin).
	if err := sys.ReselectRoots("BFS"); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeSubscribe drives a subscription end to end through the
// facade: snapshot, delta after a batch, closed channel after
// Unsubscribe.
func TestFacadeSubscribe(t *testing.T) {
	g := tripoline.NewGraph(16, tripoline.Undirected)
	g.InsertEdges(ringEdges(16, 1))
	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(2))
	if err := sys.Enable("BFS"); err != nil {
		t.Fatal(err)
	}
	sub, err := sys.Subscribe("BFS", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := <-sub.Frames()
	if first.Kind != "snapshot" || len(first.Values) != 16 {
		t.Fatalf("first frame %+v", first)
	}
	if sys.Subscribers() != 1 {
		t.Fatal("subscriber not registered")
	}
	rep := sys.ApplyBatch([]tripoline.Edge{{Src: 3, Dst: 9, W: 1}})
	if rep.FramesSent != 1 {
		t.Fatalf("fan-out %+v", rep)
	}
	delta := <-sub.Frames()
	if delta.Kind != "delta" || delta.Version != rep.Version {
		t.Fatalf("delta frame %+v", delta)
	}
	sys.Unsubscribe(sub)
	if _, ok := <-sub.Frames(); ok {
		t.Fatal("frames channel open after Unsubscribe")
	}
}
