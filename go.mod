module tripoline

go 1.22
