// Custom problem: the programming interface of the paper's §5 — a
// user-defined vertex-specific problem plugged into the full Δ-based
// machinery by implementing the Problem interface (the vertex function
// via Relax/Better, the triangle abstraction via Combine).
//
// The problem here is hop-tie-broken shortest paths ("HopSSSP"): among
// all minimum-weight paths, prefer the one with fewer hops. The vertex
// value packs (distance, hops) into one uint64 ordered lexicographically
// (distance in the high bits), so the ordinary additive relaxation
// delivers both objectives at once. The property is an additive path
// metric, so the triangle inequality holds and Tripoline can evaluate
// arbitrary-source queries incrementally.
//
// Run: go run ./examples/customproblem
package main

import (
	"fmt"
	"log"

	"tripoline"
	"tripoline/internal/gen"
)

// hopBits is how many low bits hold the hop count. With 20 bits, paths
// up to ~1M hops and total weights up to 2^43 are representable.
const hopBits = 20

// HopSSSP is shortest path with fewest-hops tie-breaking.
type HopSSSP struct{}

func (HopSSSP) Name() string        { return "HopSSSP" }
func (HopSSSP) InitValue() uint64   { return ^uint64(0) }
func (HopSSSP) SourceValue() uint64 { return 0 }

// Relax extends the path by one edge: weight into the high bits, one hop
// into the low bits. Packed lexicographic order makes the single
// addition implement "minimize distance, then hops".
func (HopSSSP) Relax(srcVal uint64, w tripoline.Weight) (uint64, bool) {
	if srcVal == ^uint64(0) {
		return 0, false
	}
	return srcVal + uint64(w)<<hopBits + 1, true
}

func (HopSSSP) Better(a, b uint64) bool { return a < b }

// Combine is saturating addition — concatenating two best paths bounds
// the direct best path in both components at once.
func (HopSSSP) Combine(a, b uint64) uint64 {
	if a == ^uint64(0) || b == ^uint64(0) {
		return ^uint64(0)
	}
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

func unpack(v uint64) (dist, hops uint64) {
	return v >> hopBits, v & (1<<hopBits - 1)
}

func main() {
	cfg := gen.Config{Name: "custom", LogN: 12, AvgDegree: 10, Directed: false, MaxWeight: 16, Seed: 3}
	edges := gen.RMAT(cfg)

	g := tripoline.NewGraph(cfg.N(), tripoline.Undirected)
	g.InsertEdges(edges[:len(edges)*3/4])

	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(8))
	if err := sys.EnableProblem(HopSSSP{}); err != nil {
		log.Fatal(err)
	}

	// Stream the rest; the custom problem's standing queries follow.
	rep := sys.ApplyBatch(edges[len(edges)*3/4:])
	fmt.Printf("streamed %d edges; HopSSSP standing queries re-stabilized in %v\n",
		rep.BatchEdges, rep.StandingElapsed)

	const source = 1234
	inc, err := sys.Query("HopSSSP", source)
	if err != nil {
		log.Fatal(err)
	}
	full, err := sys.QueryFull("HopSSSP", source)
	if err != nil {
		log.Fatal(err)
	}

	for i := range inc.Values {
		if inc.Values[i] != full.Values[i] {
			log.Fatalf("Δ-based diverged at %d", i)
		}
	}
	fmt.Printf("HopSSSP(%d): Δ-based %d activations vs %d full — identical values\n",
		source, inc.Stats.Activations, full.Stats.Activations)
	for _, dst := range []tripoline.VertexID{0, 99, 2048} {
		if inc.Values[dst] == ^uint64(0) {
			fmt.Printf("  to %-5d unreachable\n", dst)
			continue
		}
		d, h := unpack(inc.Values[dst])
		fmt.Printf("  to %-5d dist=%-4d over %d hops\n", dst, d, h)
	}
}
