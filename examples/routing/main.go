// Routing: network-routing scenario for SSWP and SSNP — the motivating
// workloads the paper cites for these problems (QoS routing and
// transportation planning).
//
// The example models an ISP backbone as a power-law graph whose edge
// weights are link capacities. Link provisioning events stream in as
// edge insertions. Operators ask, for arbitrary points of presence:
//
//   - SSWP(u): the max-bottleneck bandwidth from u to every other PoP
//     (which paths can carry a large flow);
//   - SSNP(u): the min-worst-link route metric from u (avoiding any
//     single terrible hop).
//
// Both are answered Δ-based from the standing queries, with speedups in
// the tens (the paper's strongest cases, Table 3).
//
// Run: go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"tripoline"
	"tripoline/internal/gen"
)

func main() {
	// A 4096-PoP backbone, power-law (a few dense exchange points).
	cfg := gen.Config{Name: "backbone", LogN: 12, AvgDegree: 12, Directed: false, MaxWeight: 100, Seed: 7}
	edges := gen.RMAT(cfg)
	stream := gen.MakeStream(cfg.N(), edges, false, 0.7, 2000, 7)

	g := tripoline.NewGraph(cfg.N(), tripoline.Undirected)
	g.InsertEdges(stream.Initial)

	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(8))
	for _, p := range []string{"SSWP", "SSNP"} {
		if err := sys.Enable(p); err != nil {
			log.Fatal(err)
		}
	}

	// Provisioning events arrive in batches.
	for i := 0; i < 3 && i < len(stream.Batches); i++ {
		rep := sys.ApplyBatch(stream.Batches[i])
		fmt.Printf("provisioning batch %d: %d links, standing queries re-stabilized in %v\n",
			i+1, rep.BatchEdges, rep.StandingElapsed)
	}

	// An operator asks about three PoPs nobody pre-registered.
	for _, pop := range []tripoline.VertexID{100, 2000, 4000} {
		wide, err := sys.Query("SSWP", pop)
		if err != nil {
			log.Fatal(err)
		}
		naro, err := sys.Query("SSNP", pop)
		if err != nil {
			log.Fatal(err)
		}
		wideFull, _ := sys.QueryFull("SSWP", pop)

		// Summarize: how many PoPs can receive a >=50-unit flow from pop?
		big := 0
		for _, w := range wide.Values {
			if w >= 50 && w != ^uint64(0) {
				big++
			}
		}
		fmt.Printf("PoP %-5d: %d/%d PoPs reachable with ≥50 bottleneck bandwidth; "+
			"SSWP Δ-based did %d activations vs %d full; SSNP Δ-based %v\n",
			pop, big, len(wide.Values),
			wide.Stats.Activations, wideFull.Stats.Activations, naro.Elapsed)
	}
}
