// Service: embedding the Tripoline HTTP query service in a program. The
// example starts the JSON API on a loopback listener, drives it as a
// client — streaming a batch, issuing Δ-based queries over HTTP, reading
// repeated answers from the Δ-result cache (including a stale=ok serve
// after a mutation), and holding a subscription stream that receives a
// delta frame when a batch lands — and exits. It is the in-process
// version of cmd/tripoline-server.
//
// Run: go run ./examples/service
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"tripoline/internal/core"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/server"
	"tripoline/internal/shard"
	"tripoline/internal/streamgraph"
)

func main() {
	// Build the system: a small power-law graph with SSWP standing queries.
	cfg := gen.Config{Name: "svc", LogN: 11, AvgDegree: 10, Directed: false, Seed: 11}
	g := streamgraph.New(cfg.N(), false)
	edges := gen.RMAT(cfg)
	g.InsertEdges(edges[:len(edges)*3/4])
	sys := core.NewSystem(g, 8)
	if err := sys.Enable("SSWP"); err != nil {
		log.Fatal(err)
	}
	// Serving layer: cache every query answer so repeats skip evaluation
	// (and the admission gate) entirely.
	sys.EnableResultCache(256)

	// Serve on an ephemeral loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Production-shaped options: a per-query deadline (enforced by the
	// engine at superstep boundaries) and a bounded admission gate.
	api := server.New(sys, g,
		server.WithQueryTimeout(5*time.Second),
		server.WithMaxInFlight(4, 16),
	)
	srv := &http.Server{Handler: api}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// Stream the remaining edges through the API.
	type edgeJSON struct {
		Src uint32 `json:"src"`
		Dst uint32 `json:"dst"`
		W   uint32 `json:"w"`
	}
	batch := struct {
		Edges []edgeJSON `json:"edges"`
	}{}
	for _, e := range edges[len(edges)*3/4:] {
		batch.Edges = append(batch.Edges, edgeJSON{uint32(e.Src), uint32(e.Dst), uint32(e.W)})
	}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var rep map[string]any
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	fmt.Printf("batch applied: %v edges, standing re-eval %.4fs\n",
		rep["applied"], rep["standing_seconds"])

	// Ask for widest paths from two arbitrary sources over HTTP.
	for _, src := range []int{123, 1500} {
		r, err := http.Get(fmt.Sprintf("%s/v1/query?problem=SSWP&source=%d", base, src))
		if err != nil {
			log.Fatal(err)
		}
		var q struct {
			Seconds     float64  `json:"seconds"`
			Activations int64    `json:"activations"`
			Values      []uint64 `json:"values"`
		}
		json.NewDecoder(r.Body).Decode(&q)
		r.Body.Close()
		wide, reach := 0, 0
		for i, v := range q.Values {
			if i == src || v == 0 {
				continue
			}
			reach++
			if v >= 8 {
				wide++
			}
		}
		fmt.Printf("SSWP(%d) over HTTP: %d reachable, %d with bottleneck ≥8, "+
			"%d activations in %.4fs\n", src, reach, wide, q.Activations, q.Seconds)
	}

	// Repeat a query: the Δ-result cache serves it without re-evaluating,
	// announced by the X-Tripoline-Cache header.
	r2, err := http.Get(base + "/v1/query?problem=SSWP&source=123")
	if err != nil {
		log.Fatal(err)
	}
	r2.Body.Close()
	fmt.Printf("repeat SSWP(123): cache=%q version=%s\n",
		r2.Header.Get("X-Tripoline-Cache"), r2.Header.Get("X-Tripoline-Version"))

	// Subscribe to SSWP(123) as an SSE stream, then land a batch that
	// changes its answer: the stream pushes a delta frame (changed
	// vertices only) at the new version.
	sseResp, err := http.Get(base + "/v1/subscribe?problem=SSWP&src=123")
	if err != nil {
		log.Fatal(err)
	}
	sse := bufio.NewReader(sseResp.Body)
	readFrame := func() (string, string) {
		var event, data string
		for {
			line, err := sse.ReadString('\n')
			if err != nil {
				log.Fatal(err)
			}
			line = strings.TrimRight(line, "\n")
			if line == "" && event != "" {
				return event, data
			}
			if v, ok := strings.CutPrefix(line, "event: "); ok {
				event = v
			}
			if v, ok := strings.CutPrefix(line, "data: "); ok {
				data = v
			}
		}
	}
	event, _ := readFrame()
	fmt.Println("subscribed to SSWP(123), first frame:", event)

	wideBatch, _ := json.Marshal(map[string]any{
		"edges": []map[string]any{{"src": 123, "dst": 777, "w": 200}},
	})
	bresp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(wideBatch))
	if err != nil {
		log.Fatal(err)
	}
	var brep struct {
		Version    uint64 `json:"version"`
		FramesSent int    `json:"frames_sent"`
	}
	json.NewDecoder(bresp.Body).Decode(&brep)
	bresp.Body.Close()
	event, data := readFrame()
	var frame struct {
		Version uint64           `json:"version"`
		Changed []map[string]any `json:"changed"`
	}
	json.Unmarshal([]byte(data), &frame)
	fmt.Printf("batch v%d pushed %d frame(s); %s frame carried %d changed vertices at v%d\n",
		brep.Version, brep.FramesSent, event, len(frame.Changed), frame.Version)
	sseResp.Body.Close()

	// The cached entry from before the batch is now stale: strict serving
	// re-evaluates, but a client that prefers latency can opt in.
	r3, err := http.Get(base + "/v1/query?problem=SSWP&source=123&stale=ok")
	if err != nil {
		log.Fatal(err)
	}
	r3.Body.Close()
	fmt.Printf("stale=ok SSWP(123): cache=%q stale_batches=%s\n",
		r3.Header.Get("X-Tripoline-Cache"), r3.Header.Get("X-Tripoline-Stale-Batches"))

	// The serving layer counts everything it did; scrape it.
	r, err := http.Get(base + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "tripoline_queries_total") ||
			strings.HasPrefix(line, "tripoline_batches_total") ||
			strings.HasPrefix(line, "tripoline_cache_hits_total") ||
			strings.HasPrefix(line, "tripoline_subscribe_frames_total") {
			fmt.Println("metric:", line)
		}
	}
	r.Body.Close()

	// Sharded serving: the same API over four hash-partitioned cores.
	// Queries scatter to every shard and gather into exactly the answer
	// the unsharded server gave above (the relaxation fixpoint is
	// unique), and /v1/stats reports the shard count plus the
	// tripoline_shard_* counters aggregated across all four.
	router := shard.New(cfg.N(), false, 4, 8)
	router.ApplyBatch(edges) // the full edge set in one bulk load
	if err := router.Enable("SSWP"); err != nil {
		log.Fatal(err)
	}
	router.ApplyBatch([]graph.Edge{{Src: 123, Dst: 777, W: 200}}) // the chord from above
	lnS, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	apiS := server.NewSharded(router, server.WithQueryTimeout(5*time.Second))
	srvS := &http.Server{Handler: apiS}
	go srvS.Serve(lnS)
	defer srvS.Close()
	baseS := "http://" + lnS.Addr().String()

	var shStats struct {
		Shards  int    `json:"shards"`
		Edges   int64  `json:"edges"`
		Version uint64 `json:"version"`
	}
	rs, err := http.Get(baseS + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	json.NewDecoder(rs.Body).Decode(&shStats)
	rs.Body.Close()
	fmt.Printf("sharded server: %d shards, %d arcs, version %d\n",
		shStats.Shards, shStats.Edges, shStats.Version)

	rq, err := http.Get(baseS + "/v1/query?problem=SSWP&source=123")
	if err != nil {
		log.Fatal(err)
	}
	var sq struct {
		Incremental bool     `json:"incremental"`
		Values      []uint64 `json:"values"`
	}
	json.NewDecoder(rq.Body).Decode(&sq)
	rq.Body.Close()
	fmt.Printf("sharded SSWP(123): incremental=%v bottleneck(123→777)=%d (unsharded said 200)\n",
		sq.Incremental, sq.Values[777])
}
