// DD integration: the §6.5 experiment in miniature — the triangle
// inequality optimization dropped into a general-purpose incremental
// dataflow (our mini differential-dataflow substrate) rather than the
// native Tripoline engine.
//
// One shared arrangement indexes the edge stream; multiple query
// dataflows import it (shared arrangements). Each query then runs twice:
// DD-SA (plain) and DD-SA-Tri (with the triangle filter before reduce),
// and the example reports times and reduce-operator invocation counts —
// the Table 7/8 metrics.
//
// Run: go run ./examples/ddshare
package main

import (
	"fmt"
	"time"

	"tripoline/internal/dd"
	"tripoline/internal/engine"
	"tripoline/internal/gen"
	"tripoline/internal/graph"
	"tripoline/internal/oracle"
	"tripoline/internal/props"
	"tripoline/internal/triangle"
)

func main() {
	cfg := gen.Config{Name: "dd-demo", LogN: 13, AvgDegree: 12, Directed: false, MaxWeight: 32, Seed: 5}
	edges := gen.RMAT(cfg)

	// One arrangement over the input stream, shared by every query.
	arr := dd.Arrange(cfg.N(), edges, false)
	csr := graph.FromEdges(cfg.N(), edges, false)
	fmt.Printf("arranged %d arcs over %d vertices; importers share one index\n",
		arr.NumEdges(), arr.NumVertices())

	// A standing query at the top-degree vertex supplies the Δ bounds.
	root := gen.TopDegreeVertices(cfg.N(), edges, false, 1)[0]

	for _, p := range []engine.Problem{props.BFS{}, props.SSSP{}, props.SSWP{}} {
		standing := oracle.BestPath(csr, p, root)
		const user = 777
		bound := triangle.DeltaInit(p, user, standing[user], standing)

		h := arr.Import()
		t0 := time.Now()
		plain := dd.Iterate(h, p, user, nil)
		plainT := time.Since(t0)

		t1 := time.Now()
		tri := dd.Iterate(h, p, user, &dd.TriFilter{P: p, Bound: bound})
		triT := time.Since(t1)

		// Same fixpoint, by construction.
		for v := range plain.Values {
			if plain.Values[v] != tri.Values[v] {
				panic("tri-filtered dataflow diverged")
			}
		}
		fmt.Printf("%-8s DD-SA %8v (%7d reduces)  DD-SA-Tri %8v (%7d reduces, %d filtered)\n",
			p.Name(), plainT.Round(time.Microsecond), plain.Stats.ReduceOps,
			triT.Round(time.Microsecond), tri.Stats.ReduceOps, tri.Stats.Filtered)
	}
	fmt.Printf("arrangement now has %d importers — one indexed graph, many dataflows\n",
		arr.Importers())
}
