// Social network: the streaming-graph scenario from the paper's
// introduction — a social graph growing as users follow each other, with
// per-user analytical queries arriving for arbitrary users.
//
// Three query types run over the same directed follower graph:
//
//   - BFS(u): degrees of separation from user u (friend-of-friend rings);
//   - SSR(u): which accounts u's posts can reach at all (influence set);
//   - SSNSP(u): how many distinct shortest interaction chains connect u
//     to everyone (a tie-strength proxy).
//
// The system maintains standing queries at the highest-degree accounts
// (the celebrities), and answers queries for ordinary accounts
// incrementally via the triangle inequalities.
//
// Run: go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"tripoline"
	"tripoline/internal/gen"
)

func main() {
	// A 8192-account follower graph; power-law: few celebrities, many
	// ordinary accounts. Directed: following is not symmetric.
	cfg := gen.Config{Name: "social", LogN: 13, AvgDegree: 10, Directed: true, MaxWeight: 1, Seed: 99}
	edges := gen.RMAT(cfg)
	stream := gen.MakeStream(cfg.N(), edges, true, 0.6, 5000, 99)

	g := tripoline.NewGraph(cfg.N(), tripoline.Directed)
	g.InsertEdges(stream.Initial)

	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(16))
	for _, p := range []string{"BFS", "SSR", "SSNSP"} {
		if err := sys.Enable(p); err != nil {
			log.Fatal(err)
		}
	}

	// New follows stream in.
	for i := 0; i < 2 && i < len(stream.Batches); i++ {
		rep := sys.ApplyBatch(stream.Batches[i])
		fmt.Printf("follow batch %d: %d new follows, standing queries updated in %v\n",
			i+1, rep.BatchEdges, rep.StandingElapsed)
	}

	// Analyze a few arbitrary accounts.
	unreached := ^uint64(0)
	for _, user := range []tripoline.VertexID{1234, 4321, 7777} {
		reach, err := sys.Query("SSR", user)
		if err != nil {
			log.Fatal(err)
		}
		hops, err := sys.Query("BFS", user)
		if err != nil {
			log.Fatal(err)
		}
		paths, err := sys.Query("SSNSP", user)
		if err != nil {
			log.Fatal(err)
		}

		influenced, within3 := 0, 0
		for v := range reach.Values {
			if reach.Values[v] == 1 {
				influenced++
			}
			if hops.Values[v] != unreached && hops.Values[v] <= 3 {
				within3++
			}
		}
		var maxPaths uint64
		for _, c := range paths.Counts {
			if c > maxPaths {
				maxPaths = c
			}
		}
		fmt.Printf("user %-5d: reaches %d accounts, %d within 3 hops, "+
			"max parallel shortest chains to one account: %d (SSR Δ-eval %v)\n",
			user, influenced, within3, maxPaths, reach.Elapsed)
	}

	// The other vertex-specific workload the paper's intro motivates:
	// the overlap of two specific users' follow sets.
	snap := g.Acquire()
	common := snap.CommonNeighbors(1234, 4321)
	fmt.Printf("users 1234 and 4321 follow %d accounts in common; "+
		"local clustering of 1234: %.3f\n",
		len(common), snap.ClusteringCoefficient(1234))
}
