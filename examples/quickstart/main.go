// Quickstart: the smallest end-to-end use of the tripoline public API.
//
// It builds a tiny weighted undirected graph, enables SSWP (single-source
// widest path) standing queries, streams an update batch, and then asks a
// user query from a source vertex the system has never seen before —
// which is the point of the paper: the query is still answered
// incrementally, via the graph triangle inequality.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tripoline"
)

func main() {
	// A 9-vertex graph laid out as a ring with two chords. Weights are
	// link capacities; SSWP finds the max-bottleneck path.
	g := tripoline.NewGraph(9, tripoline.Undirected)
	g.InsertEdges([]tripoline.Edge{
		{Src: 0, Dst: 1, W: 10}, {Src: 1, Dst: 2, W: 8}, {Src: 2, Dst: 3, W: 6},
		{Src: 3, Dst: 4, W: 10}, {Src: 4, Dst: 5, W: 4}, {Src: 5, Dst: 6, W: 10},
		{Src: 6, Dst: 7, W: 9}, {Src: 7, Dst: 8, W: 10}, {Src: 8, Dst: 0, W: 7},
	})

	// Wrap the graph in a Tripoline system with 2 standing queries.
	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(2))
	if err := sys.Enable("SSWP"); err != nil {
		log.Fatal(err)
	}

	// Stream an update: a new high-capacity chord. The standing queries
	// are re-stabilized incrementally.
	rep := sys.ApplyBatch([]tripoline.Edge{{Src: 1, Dst: 5, W: 9}})
	fmt.Printf("applied batch: %d edges, %d changed sources, standing re-eval %v\n",
		rep.BatchEdges, rep.ChangedSources, rep.StandingElapsed)

	// A user query from an arbitrary source — no registration needed.
	const source = 3
	res, err := sys.Query("SSWP", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("widest-path bottlenecks from vertex %d (Δ-based, %d activations):\n",
		source, res.Stats.Activations)
	for v, width := range res.Values {
		if v == source {
			fmt.Printf("  to %d: ∞ (source)\n", v)
			continue
		}
		fmt.Printf("  to %d: %d\n", v, width)
	}

	// The from-scratch evaluation gives identical values but does more work.
	full, _ := sys.QueryFull("SSWP", source)
	fmt.Printf("full evaluation: %d activations (Δ-based did %d)\n",
		full.Stats.Activations, res.Stats.Activations)
}
