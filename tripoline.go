// Package tripoline is a streaming graph processing system with
// generalized incremental evaluation of vertex-specific queries, a Go
// implementation of "Tripoline: Generalized Incremental Graph Processing
// via Graph Triangle Inequality" (EuroSys 2021).
//
// A Graph grows by batches of weighted edge insertions. For each enabled
// problem (BFS, SSSP, SSWP, SSNP, Viterbi, SSR, Radii, SSNSP — plus the
// whole-graph PageRank and CC), the system keeps K standing queries
// rooted at high-degree vertices incrementally up to date. A user query
// with an arbitrary source vertex u is then answered incrementally: the
// problem's graph triangle inequality turns the standing query's
// converged property array into a valid warm-start initialization
// Δ(u,r)[x] = property(u,r) ⊕ property(r,x), from which a monotonic
// async-safe evaluation converges to exactly the from-scratch result —
// typically after a small fraction of the work.
//
// Quick start:
//
//	g := tripoline.NewGraph(numVertices, tripoline.Undirected)
//	g.InsertEdges(initialEdges)
//	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(16))
//	sys.Enable("SSWP")
//	sys.ApplyBatch(moreEdges)          // stream; standing queries follow
//	res, _ := sys.Query("SSWP", u)     // incremental, any source u
//
//	// Under a deadline: the engine observes ctx at superstep
//	// boundaries and returns an error matching ErrCanceled.
//	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
//	defer cancel()
//	res, err := sys.QueryCtx(ctx, "SSWP", u)
//
// Failures are reported through the sentinel errors ErrUnknownProblem,
// ErrSourceOutOfRange, ErrNoSuchVersion and ErrCanceled (test with
// errors.Is). Cancellation is always safe: a user query evaluates on
// private state, so abandoning it never perturbs the standing queries.
//
// Custom problems implement the Problem interface (the vertex function via
// Relax/Better plus the triangle operators Combine/Better) and can be
// registered alongside the built-ins; see the examples directory.
package tripoline

import (
	"context"
	"io"
	"time"

	"tripoline/internal/core"
	"tripoline/internal/engine"
	"tripoline/internal/graph"
	"tripoline/internal/props"
	"tripoline/internal/shard"
	"tripoline/internal/streamgraph"
)

// Sentinel errors returned (wrapped) by System methods; test with
// errors.Is.
var (
	// ErrUnknownProblem reports a problem name that is not recognized or
	// not enabled on this system.
	ErrUnknownProblem = core.ErrUnknownProblem
	// ErrSourceOutOfRange reports a query source ≥ the vertex count.
	ErrSourceOutOfRange = core.ErrSourceOutOfRange
	// ErrNoSuchVersion reports a QueryAt version that is not retained
	// (or history not enabled).
	ErrNoSuchVersion = core.ErrNoSuchVersion
	// ErrCanceled reports an evaluation abandoned because its context
	// was canceled or its deadline expired. The returned error also
	// unwraps to the context cause, so
	// errors.Is(err, context.DeadlineExceeded) works.
	ErrCanceled = core.ErrCanceled
	// ErrSubscribeUnsupported reports a Subscribe on a problem whose
	// answers do not fit the per-vertex delta frame model (Radii).
	ErrSubscribeUnsupported = core.ErrSubscribeUnsupported
)

// VertexID identifies a vertex; IDs are dense starting at 0.
type VertexID = graph.VertexID

// Weight is a positive integer edge weight.
type Weight = graph.Weight

// Edge is a weighted directed edge (mirrored automatically on undirected
// graphs).
type Edge = graph.Edge

// Problem is the programming interface: the vertex function (Relax,
// Better) plus the triangle abstraction operators (Combine with Better as
// the comparison). See internal/props for the eight built-ins.
type Problem = engine.Problem

// Stats reports evaluation work: activations (vertex-function
// evaluations), edge relaxations, successful updates, and iterations.
type Stats = engine.Stats

// QueryResult is the outcome of a user query.
type QueryResult = core.QueryResult

// BatchReport summarizes one applied update batch.
type BatchReport = core.BatchReport

// Snapshot is an immutable version of the streaming graph, safe for
// concurrent readers.
type Snapshot = streamgraph.Snapshot

// Directedness selects the edge interpretation of a graph.
type Directedness bool

// Graph directedness values.
const (
	Undirected Directedness = false
	Directed   Directedness = true
)

// Graph is the streaming (growing) graph.
type Graph struct {
	inner *streamgraph.Graph
}

// NewGraph creates an empty streaming graph over n vertices.
func NewGraph(n int, d Directedness) *Graph {
	return &Graph{inner: streamgraph.New(n, bool(d))}
}

// InsertEdges applies one batch of edge insertions and returns the new
// snapshot plus the distinct source vertices whose adjacency changed.
// When the graph is managed by a System, prefer System.ApplyBatch so the
// standing queries are re-stabilized too.
func (g *Graph) InsertEdges(batch []Edge) (*Snapshot, []VertexID) {
	return g.inner.InsertEdges(batch)
}

// DeleteEdges removes a batch of edges (mirrors included on undirected
// graphs). Prefer System.ApplyDeletions when the graph is managed by a
// System so the standing queries are recovered too.
func (g *Graph) DeleteEdges(batch []Edge) (*Snapshot, []VertexID) {
	return g.inner.DeleteEdges(batch)
}

// Acquire returns the latest immutable snapshot.
func (g *Graph) Acquire() *Snapshot { return g.inner.Acquire() }

// Save writes the graph's current snapshot to w in a compressed binary
// format (gap + varint encoded adjacency). Standing query state is not
// persisted; re-enable problems after LoadGraph to rebuild it.
func (g *Graph) Save(w io.Writer) error {
	return streamgraph.Save(w, g.inner.Acquire(), g.inner.Directed())
}

// LoadGraph reads a graph previously written by Save.
func LoadGraph(r io.Reader) (*Graph, error) {
	inner, err := streamgraph.Load(r)
	if err != nil {
		return nil, err
	}
	return &Graph{inner: inner}, nil
}

// Option configures a System.
type Option func(*config)

type config struct {
	k            int
	history      int
	record       bool
	cacheEntries int
	cacheOn      bool
	shards       int
}

// WithStandingQueries sets K, the number of standing queries maintained
// per enabled problem (default 16, max 64).
func WithStandingQueries(k int) Option {
	return func(c *config) { c.k = k }
}

// WithHistory retains up to capacity past snapshots so QueryAt can
// answer against earlier graph versions (time-travel queries). Purely
// functional snapshots make retention nearly free.
func WithHistory(capacity int) Option {
	return func(c *config) { c.history = capacity }
}

// WithQueryRecording turns on recording of user-query sources into the
// workload histogram consumed by ReselectRoots.
func WithQueryRecording() Option {
	return func(c *config) { c.record = true }
}

// WithResultCache enables the Δ-result cache: every answered user query
// is retained (LRU, up to entries; <= 0 selects the default capacity)
// keyed by problem and source and stamped with its snapshot version.
// CachedQuery serves retained answers — exact for the version they
// report — without any evaluation, and the HTTP layer uses the same
// entries for its stale=ok / min_version serving policy.
func WithResultCache(entries int) Option {
	return func(c *config) { c.cacheEntries = entries; c.cacheOn = true }
}

// WithShards partitions the system into s independent shard cores, each
// with its own standing queries, mirror chain and writer, coordinated by
// a versioned cross-shard snapshot barrier (internal/shard). Queries
// scatter to every shard in parallel and gather into exactly the answer
// an unsharded system produces; the standing-query budget K is split
// across shards so total maintenance work stays comparable. s <= 1 is
// the plain unsharded system. With s > 1, Subscribe is unsupported
// (ErrSubscribeUnsupported) and the Graph passed to NewSystem is only
// the construction-time source of edges — stream further updates through
// System.ApplyBatch, not Graph.InsertEdges.
func WithShards(s int) Option {
	return func(c *config) { c.shards = s }
}

// backend is the method set shared by the unsharded core.System and the
// sharded shard.Router; the facade delegates to whichever the options
// selected.
type backend interface {
	Enable(name string) error
	EnableCustom(p engine.Problem) error
	Enabled() []string
	ApplyBatch(batch []graph.Edge) core.BatchReport
	ApplyBatchCtx(ctx context.Context, batch []graph.Edge) (core.BatchReport, error)
	ApplyDeletions(batch []graph.Edge) core.BatchReport
	ApplyDeletionsCtx(ctx context.Context, batch []graph.Edge) (core.BatchReport, error)
	Query(name string, u graph.VertexID) (*core.QueryResult, error)
	QueryCtx(ctx context.Context, name string, u graph.VertexID) (*core.QueryResult, error)
	QueryFull(name string, u graph.VertexID) (*core.QueryResult, error)
	QueryFullCtx(ctx context.Context, name string, u graph.VertexID) (*core.QueryResult, error)
	QueryMany(name string, sources []graph.VertexID) (*core.MultiResult, error)
	QueryManyCtx(ctx context.Context, name string, sources []graph.VertexID) (*core.MultiResult, error)
	QueryAt(version uint64, name string, u graph.VertexID) (*core.QueryResult, error)
	QueryAtCtx(ctx context.Context, version uint64, name string, u graph.VertexID) (*core.QueryResult, error)
	EnableHistory(capacity int)
	HistoryVersions() []uint64
	RecordQueries(on bool)
	ReselectRoots(problem string) error
	EnableResultCache(entries int)
	CachedQuery(problem string, u graph.VertexID, minVersion uint64, staleOK bool) (*core.QueryResult, uint64, bool)
	ResultCacheMetrics() core.CacheMetrics
	Subscribe(problem string, u graph.VertexID, buffer int) (*core.Subscription, error)
	SubscribeCtx(ctx context.Context, problem string, u graph.VertexID, buffer int) (*core.Subscription, error)
	Unsubscribe(sub *core.Subscription)
	Subscribers() int
	StandingMaintainTime(name string) (time.Duration, error)
}

// System couples a streaming graph with standing-query maintenance and
// Δ-based user query evaluation.
type System struct {
	inner  backend
	g      *Graph
	shards int
}

// NewSystem wraps a streaming graph. With WithShards(s), s > 1, the
// graph's current edges are hash-partitioned across s shard cores and
// the returned System serves queries by scatter/gather over them; the
// Graph itself is then detached (stream updates via System.ApplyBatch).
func NewSystem(g *Graph, opts ...Option) *System {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.shards < 1 {
		c.shards = 1
	}
	s := &System{g: g, shards: c.shards}
	if c.shards == 1 {
		s.inner = core.NewSystem(g.inner, c.k)
	} else {
		s.inner = newShardedBackend(g.inner, c.shards, c.k)
	}
	if c.history > 0 {
		s.inner.EnableHistory(c.history)
	}
	if c.record {
		s.inner.RecordQueries(true)
	}
	if c.cacheOn {
		s.inner.EnableResultCache(c.cacheEntries)
	}
	return s
}

// newShardedBackend builds a shard.Router over the graph's current
// snapshot: every existing edge is collected and bulk-loaded as one
// batch (the router numbers versions from scratch — version 1 after a
// non-empty load, 0 for an empty graph).
func newShardedBackend(g *streamgraph.Graph, shards, k int) *shard.Router {
	snap := g.Acquire()
	r := shard.New(snap.NumVertices(), g.Directed(), shards, k)
	var edges []graph.Edge
	for v := 0; v < snap.NumVertices(); v++ {
		u := graph.VertexID(v)
		snap.ForEachOut(u, func(dst graph.VertexID, w graph.Weight) {
			// Undirected snapshots store both arcs of each logical edge
			// (a self-loop once); emit each edge exactly once so the
			// router's own mirroring reconstructs the same arc set.
			if !g.Directed() && dst < u {
				return
			}
			edges = append(edges, graph.Edge{Src: u, Dst: dst, W: w})
		})
	}
	if len(edges) > 0 {
		r.ApplyBatch(edges)
	}
	return r
}

// Graph returns the underlying streaming graph. On a sharded system
// (WithShards > 1) this is the construction-time graph only — the shards
// hold their own partitions, so mutate through System.ApplyBatch and
// ApplyDeletions, never Graph.InsertEdges.
func (s *System) Graph() *Graph { return s.g }

// Shards reports the number of shard cores (1 for an unsharded system).
func (s *System) Shards() int { return s.shards }

// Enable sets up and fully evaluates standing queries for a problem.
// Recognized names: BFS, SSSP, SSWP, SSNP, Viterbi, SSR, Radii, SSNSP,
// PageRank, CC.
func (s *System) Enable(problem string) error { return s.inner.Enable(problem) }

// EnableProblem registers a custom problem: implement Problem with a
// monotonic, async-safe Relax and triangle-compatible Combine/Better,
// and the system maintains standing queries for it and answers
// arbitrary-source user queries Δ-based — the paper's programming
// interface. See examples/customproblem.
func (s *System) EnableProblem(p Problem) error { return s.inner.EnableCustom(p) }

// Enabled lists the enabled problems.
func (s *System) Enabled() []string { return s.inner.Enabled() }

// ApplyBatch inserts edges and incrementally re-stabilizes every enabled
// problem's standing queries.
func (s *System) ApplyBatch(batch []Edge) BatchReport { return s.inner.ApplyBatch(batch) }

// ApplyBatchCtx is ApplyBatch with context-based admission: a canceled
// ctx is honored only before the mutation begins (returning an error
// matching ErrCanceled). Once started, the batch and its standing-query
// maintenance always run to completion — interrupting maintenance
// mid-flight would leave standing state stale relative to its snapshot,
// silently degrading every later Δ warm start.
func (s *System) ApplyBatchCtx(ctx context.Context, batch []Edge) (BatchReport, error) {
	return s.inner.ApplyBatchCtx(ctx, batch)
}

// ApplyDeletions removes edges and recovers every enabled problem's
// standing queries. Deletions break the monotonicity that incremental
// resumption relies on, so recovery re-evaluates the standing queries
// from scratch — always sound, if slower than an insertion batch.
func (s *System) ApplyDeletions(batch []Edge) BatchReport {
	return s.inner.ApplyDeletions(batch)
}

// ApplyDeletionsCtx is ApplyDeletions with context-based admission (the
// same semantics as ApplyBatchCtx: ctx gates entry, never interrupts
// recovery mid-flight).
func (s *System) ApplyDeletionsCtx(ctx context.Context, batch []Edge) (BatchReport, error) {
	return s.inner.ApplyDeletionsCtx(ctx, batch)
}

// Query evaluates a user query with Δ-based incremental evaluation: any
// source vertex, no a priori registration needed.
func (s *System) Query(problem string, source VertexID) (*QueryResult, error) {
	return s.inner.Query(problem, source)
}

// QueryCtx is Query with cooperative cancellation: the engine checks ctx
// at superstep boundaries (no per-edge cost) and returns an error
// matching ErrCanceled when it fires. The query evaluates on private
// state, so cancellation never perturbs the standing queries.
func (s *System) QueryCtx(ctx context.Context, problem string, source VertexID) (*QueryResult, error) {
	return s.inner.QueryCtx(ctx, problem, source)
}

// QueryFull evaluates a user query from scratch (the non-incremental
// baseline). Results are identical to Query's; only the work differs.
func (s *System) QueryFull(problem string, source VertexID) (*QueryResult, error) {
	return s.inner.QueryFull(problem, source)
}

// QueryFullCtx is QueryFull with cooperative cancellation (see QueryCtx).
func (s *System) QueryFullCtx(ctx context.Context, problem string, source VertexID) (*QueryResult, error) {
	return s.inner.QueryFullCtx(ctx, problem, source)
}

// MultiResult is the outcome of a batched user-query evaluation.
type MultiResult = core.MultiResult

// QueryMany evaluates up to 64 same-problem user queries in one batched
// Δ-based evaluation (the §4.5 batch mode applied to user queries):
// identical values to per-query Query calls, with the graph and value
// arrays traversed once.
func (s *System) QueryMany(problem string, sources []VertexID) (*MultiResult, error) {
	return s.inner.QueryMany(problem, sources)
}

// QueryManyCtx is QueryMany with cooperative cancellation (see QueryCtx).
func (s *System) QueryManyCtx(ctx context.Context, problem string, sources []VertexID) (*MultiResult, error) {
	return s.inner.QueryManyCtx(ctx, problem, sources)
}

// EnableHistory retains up to capacity past snapshots for QueryAt.
//
// Deprecated: pass WithHistory(capacity) to NewSystem instead; the
// option form configures the system before any serving starts.
func (s *System) EnableHistory(capacity int) { s.inner.EnableHistory(capacity) }

// HistoryVersions lists the retained snapshot versions.
func (s *System) HistoryVersions() []uint64 { return s.inner.HistoryVersions() }

// QueryAt evaluates a query against a retained historical version (full
// evaluation — Δ-based bounds are only valid for the live version).
func (s *System) QueryAt(version uint64, problem string, source VertexID) (*QueryResult, error) {
	return s.inner.QueryAt(version, problem, source)
}

// QueryAtCtx is QueryAt with cooperative cancellation (see QueryCtx) —
// historical queries are full evaluations, the most expensive kind, so
// deadlines matter most here.
func (s *System) QueryAtCtx(ctx context.Context, version uint64, problem string, source VertexID) (*QueryResult, error) {
	return s.inner.QueryAtCtx(ctx, version, problem, source)
}

// RecordQueries toggles recording of user-query sources into a workload
// histogram consumed by ReselectRoots.
//
// Deprecated: pass WithQueryRecording() to NewSystem instead; the option
// form configures the system before any serving starts.
func (s *System) RecordQueries(on bool) { s.inner.RecordQueries(on) }

// ReselectRoots re-roots a problem's standing queries using the recorded
// query distribution blended with topology — the paper's §5 refinement
// for workloads whose query hotspots drift. Without recorded history it
// falls back to the top-degree rule.
func (s *System) ReselectRoots(problem string) error { return s.inner.ReselectRoots(problem) }

// CacheMetrics summarizes Δ-result cache activity.
type CacheMetrics = core.CacheMetrics

// CachedQuery serves a retained answer for (problem, source) when the
// cache (WithResultCache) holds one satisfying the freshness policy: at
// least minVersion, and — unless staleOK — at the current graph version.
// The returned result is exact for the version it reports;
// staleBatches counts the graph-changing batches applied since.
func (s *System) CachedQuery(problem string, source VertexID, minVersion uint64, staleOK bool) (res *QueryResult, staleBatches uint64, ok bool) {
	return s.inner.CachedQuery(problem, source, minVersion, staleOK)
}

// ResultCacheMetrics reports Δ-result cache activity (zero value when
// the cache is not enabled).
func (s *System) ResultCacheMetrics() CacheMetrics { return s.inner.ResultCacheMetrics() }

// Subscription is a registered push stream over one (problem, source)
// query; ResultFrame and VertexDelta are its wire types.
type (
	Subscription = core.Subscription
	ResultFrame  = core.ResultFrame
	VertexDelta  = core.VertexDelta
)

// Subscribe registers a continuously maintained answer for (problem,
// source): the first frame on Subscription.Frames() is the full answer
// (kind "snapshot"), and every subsequent ApplyBatch/ApplyDeletions
// pushes the changed (vertex, value) pairs (kind "delta") computed by
// one fused width-K refresh over all subscribed sources. buffer sets the
// frame-channel capacity (<= 0 selects the default); a subscriber whose
// buffer is full skips versions but every delivered frame is cumulative
// from the client's last received state, so applying frames in order is
// always exact. Call Unsubscribe when done.
func (s *System) Subscribe(problem string, source VertexID, buffer int) (*Subscription, error) {
	return s.inner.Subscribe(problem, source, buffer)
}

// SubscribeCtx is Subscribe with cooperative cancellation of the initial
// snapshot evaluation (see QueryCtx).
func (s *System) SubscribeCtx(ctx context.Context, problem string, source VertexID, buffer int) (*Subscription, error) {
	return s.inner.SubscribeCtx(ctx, problem, source, buffer)
}

// Unsubscribe deregisters a subscription and closes its frame channel.
// Idempotent.
func (s *System) Unsubscribe(sub *Subscription) { s.inner.Unsubscribe(sub) }

// Subscribers reports the number of registered subscriptions.
func (s *System) Subscribers() int { return s.inner.Subscribers() }

// FormatValue renders an encoded vertex value human-readably for the
// named built-in problem (e.g. "dist 17", "width ∞", "unreachable").
func FormatValue(problem string, value uint64) string {
	return props.Format(problem, value)
}

// BuiltinProblems lists the problem names Enable accepts: the paper's
// eight vertex-specific benchmarks plus the whole-graph PageRank and CC.
func BuiltinProblems() []string {
	return append(props.Names(), "PageRank", "CC")
}

// StandingMaintainTime reports the wall time the named problem spent in
// its most recent standing-query (re-)evaluation.
func (s *System) StandingMaintainTime(problem string) (float64, error) {
	d, err := s.inner.StandingMaintainTime(problem)
	return d.Seconds(), err
}
