package tripoline_test

import (
	"bytes"
	"testing"

	"tripoline"
	"tripoline/internal/gen"
)

func TestGraphSaveLoadThroughFacade(t *testing.T) {
	cfg := gen.Config{Name: "p", LogN: 9, AvgDegree: 8, Directed: false, Seed: 21}
	edges := gen.RMAT(cfg)
	g := tripoline.NewGraph(cfg.N(), tripoline.Undirected)
	g.InsertEdges(edges)

	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := tripoline.LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// A system over the restored graph answers queries identical to one
	// over the original.
	sysA := tripoline.NewSystem(g, tripoline.WithStandingQueries(4))
	sysB := tripoline.NewSystem(loaded, tripoline.WithStandingQueries(4))
	for _, sys := range []*tripoline.System{sysA, sysB} {
		if err := sys.Enable("SSSP"); err != nil {
			t.Fatal(err)
		}
	}
	a, err := sysA.Query("SSSP", 17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sysB.Query("SSSP", 17)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Values {
		if a.Values[v] != b.Values[v] {
			t.Fatalf("restored graph answers differently at %d", v)
		}
	}
}

func TestLoadGraphRejectsGarbage(t *testing.T) {
	if _, err := tripoline.LoadGraph(bytes.NewReader([]byte("not a graph"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFacadeDeletions(t *testing.T) {
	g := tripoline.NewGraph(8, tripoline.Undirected)
	g.InsertEdges(ringEdges(8, 2))
	sys := tripoline.NewSystem(g, tripoline.WithStandingQueries(2))
	if err := sys.Enable("BFS"); err != nil {
		t.Fatal(err)
	}
	// Cut the ring between 0 and 1: 1 is now 7 hops from 0 the long way.
	rep := sys.ApplyDeletions([]tripoline.Edge{{Src: 0, Dst: 1, W: 2}})
	if rep.ChangedSources == 0 {
		t.Fatal("deletion not applied")
	}
	inc, err := sys.Query("BFS", 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sys.QueryFull("BFS", 0)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Values[1] != 7 || full.Values[1] != 7 {
		t.Fatalf("level(1)=%d/%d, want 7 after cutting the ring", inc.Values[1], full.Values[1])
	}
}
